package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"feam/internal/obs"
	"feam/internal/scenario"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{Fleet: scenario.FleetSpec{Base: scenario.FleetBaseTable2}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func postPredict(t *testing.T, url string, body string) (int, PredictResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/predict: %v", err)
	}
	defer resp.Body.Close()
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatalf("decoding predict response: %v", err)
	}
	return resp.StatusCode, pr
}

// TestSitesEndpoint: the fleet listing is complete, sorted, and carries
// the inventory fields operators select sites by.
func TestSitesEndpoint(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/sites")
	if err != nil {
		t.Fatalf("GET /v1/sites: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/sites = %d, want 200", resp.StatusCode)
	}
	var body struct {
		Sites []SiteInfo `json:"sites"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding sites: %v", err)
	}
	if len(body.Sites) != s.Sites() {
		t.Fatalf("listed %d sites, want %d", len(body.Sites), s.Sites())
	}
	for i := 1; i < len(body.Sites); i++ {
		if body.Sites[i-1].Name >= body.Sites[i].Name {
			t.Errorf("sites out of order: %q before %q", body.Sites[i-1].Name, body.Sites[i].Name)
		}
	}
	for _, si := range body.Sites {
		if si.Arch == "" || si.Glibc == "" || si.Cores == 0 {
			t.Errorf("site %s missing inventory fields: %+v", si.Name, si)
		}
	}
}

// TestSurveyEndpoint: surveys serve the discovered environment and repeat
// surveys are fingerprint-gated — one discover span no matter how often
// the endpoint is hit.
func TestSurveyEndpoint(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/survey/india")
		if err != nil {
			t.Fatalf("GET /v1/survey/india: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/survey/india = %d: %s", resp.StatusCode, body)
		}
		var env map[string]any
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatalf("survey is not JSON: %v", err)
		}
	}
	if got := s.Engine().Metrics().Histogram(obs.OpDiscover).Count(); got != 1 {
		t.Errorf("discover spans after 3 surveys = %d, want 1", got)
	}

	resp, err := http.Get(ts.URL + "/v1/survey/nonesuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/survey/nonesuch = %d, want 404", resp.StatusCode)
	}
}

// TestPredictRepeatIdentical: the ISSUE acceptance check — repeated
// identical predict requests produce exactly one discover span, whether
// they arrive sequentially (survey cache) or concurrently (coalescer +
// survey cache).
func TestPredictRepeatIdentical(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const K = 12
	var wg sync.WaitGroup
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
				strings.NewReader(`{"site":"india","name":"app"}`))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := s.Engine().Metrics().Histogram(obs.OpDiscover).Count(); got != 1 {
		t.Errorf("discover spans after %d identical predicts = %d, want 1", K, got)
	}
	st := s.CoalescerStats()
	if st.Leads+st.Coalesced != K {
		t.Errorf("coalescer saw %d+%d requests, want %d", st.Leads, st.Coalesced, K)
	}
}

// TestPredictSingle: a lone request answers with the determinant ladder
// and a readiness verdict.
func TestPredictSingle(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, pr := postPredict(t, ts.URL, `{"site":"india"}`)
	if status != http.StatusOK {
		t.Fatalf("predict = %d (%s), want 200", status, pr.Error)
	}
	if pr.Site != "india" || pr.Binary != "app" {
		t.Errorf("predict identity = %q/%q, want india/app", pr.Site, pr.Binary)
	}
	if len(pr.Determinants) == 0 {
		t.Error("predict returned no determinant outcomes")
	}

	status, pr = postPredict(t, ts.URL, `{"site":"nonesuch"}`)
	if status != http.StatusNotFound || pr.Error == "" {
		t.Errorf("unknown-site predict = %d %q, want 404 with error", status, pr.Error)
	}

	status, pr = postPredict(t, ts.URL, `{"site":"india","binary_b64":"!!!"}`)
	if status != http.StatusBadRequest {
		t.Errorf("bad base64 predict = %d, want 400", status)
	}
}

// TestPredictBatch: batched requests fan out and every entry answers at
// its input index; a bad entry fails in place without sinking the batch.
func TestPredictBatch(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var reqs []string
	for i := 0; i < 3; i++ {
		reqs = append(reqs, `{"site":"india","name":"app"}`)
	}
	reqs = append(reqs, `{"site":"nonesuch"}`)
	body := `{"requests":[` + strings.Join(reqs, ",") + `]}`

	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch predict = %d: %s", resp.StatusCode, raw)
	}
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatalf("decoding batch: %v", err)
	}
	if len(br.Results) != 4 {
		t.Fatalf("batch returned %d results, want 4", len(br.Results))
	}
	for i := 0; i < 3; i++ {
		if br.Results[i].Error != "" {
			t.Errorf("results[%d] failed: %s", i, br.Results[i].Error)
		}
		if br.Results[i].Site != "india" {
			t.Errorf("results[%d].Site = %q, want india", i, br.Results[i].Site)
		}
	}
	if br.Results[3].Error == "" {
		t.Error("results[3] (unknown site) should carry an error")
	}
}

// TestGracefulDrainAndCommit: cancelling the serve context must not cut
// an in-flight prediction — Serve drains it to a 200 — and the follow-up
// Commit persists the fleet inventory and a clean-shutdown manifest.
func TestGracefulDrainAndCommit(t *testing.T) {
	s := newTestServer(t)

	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/predict" {
			once.Do(func() { close(entered) })
			<-gate
		}
		s.Handler().ServeHTTP(w, r)
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewHTTPServer(ln.Addr().String(), slow)
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- Serve(ctx, srv, ln, 30*time.Second) }()

	reqDone := make(chan error, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/predict",
			"application/json", bytes.NewReader([]byte(`{"site":"india"}`)))
		if err != nil {
			reqDone <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			reqDone <- fmt.Errorf("status %d: %s", resp.StatusCode, raw)
			return
		}
		reqDone <- nil
	}()

	<-entered
	cancel() // SIGTERM equivalent: stop accepting, drain in-flight

	select {
	case err := <-serveDone:
		t.Fatalf("Serve returned %v before the in-flight request finished", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(gate)
	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request during shutdown: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve = %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}

	if err := s.Commit(context.Background()); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	names, err := s.Engine().StoredSites()
	if err != nil {
		t.Fatalf("StoredSites: %v", err)
	}
	if len(names) != s.Sites() {
		t.Errorf("committed %d site records, want %d", len(names), s.Sites())
	}
	raw, ok, err := s.st.Get("server", "manifest")
	if err != nil || !ok {
		t.Fatalf("manifest record: ok=%v err=%v", ok, err)
	}
	var manifest map[string]any
	if err := json.Unmarshal(raw, &manifest); err != nil {
		t.Fatalf("manifest JSON: %v", err)
	}
	if manifest["clean_shutdown"] != true {
		t.Errorf("manifest = %v, want clean_shutdown true", manifest)
	}
}
