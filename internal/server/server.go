package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"feam/internal/elfimg"
	"feam/internal/execsim"
	"feam/internal/experiment"
	"feam/internal/feam"
	"feam/internal/obs"
	"feam/internal/registry"
	"feam/internal/scenario"
	"feam/internal/store"
	"feam/internal/testbed"
	"feam/internal/vfs"
)

// Config configures a FEAM prediction service.
type Config struct {
	// Fleet declares the sites the service answers for.
	Fleet scenario.FleetSpec
	// Seed drives the deterministic probe simulator.
	Seed int64
	// Workers bounds batch fan-out (0 = the engine default).
	Workers int
	// MaxBinaryBytes caps the decoded size of a request's binary
	// (0 = DefaultMaxBinaryBytes).
	MaxBinaryBytes int64
	// TraceCapacity sizes the tracer ring (0 = the tracer default).
	TraceCapacity int
}

// DefaultMaxBinaryBytes caps client-supplied binaries at 8 MiB.
const DefaultMaxBinaryBytes = 8 << 20

// Server is the FEAM control plane: an engine over a sharded registry and
// a persistent store, a fleet of sites, and a coalescer that deduplicates
// identical concurrent predictions. Zero-value is not usable; construct
// with New.
type Server struct {
	cfg     Config
	tb      *testbed.Testbed
	eng     *feam.Engine
	co      *feam.Coalescer
	runner  feam.ProgramRunner
	metrics *obs.Registry
	tracer  *obs.Tracer
	st      *store.Store

	// defaultBin is the built-in minimal probe binary used by requests
	// that carry no binary of their own; defaultDesc is its description,
	// computed once so the hot serving path neither re-parses nor
	// re-hashes it per request.
	defaultBin  []byte
	defaultDesc *feam.BinaryDescription

	mux *http.ServeMux

	// predicting tracks in-flight prediction work so Commit can drain it
	// even when invoked outside the HTTP shutdown path.
	predicting sync.WaitGroup
}

// New builds the service: fleet construction, engine stack (tracer,
// metrics, sharded registry, persistent store on an isolated state
// filesystem), and the HTTP routes.
func New(cfg Config) (*Server, error) {
	tb, err := scenario.BuildFleet(cfg.Fleet)
	if err != nil {
		return nil, fmt.Errorf("server: building fleet: %w", err)
	}
	metricsReg := obs.NewRegistry()
	tracer := obs.NewTracer(cfg.TraceCapacity)
	st, err := store.Open(vfs.New(), "/state",
		store.WithMetrics(metricsReg), store.WithTracer(tracer))
	if err != nil {
		return nil, fmt.Errorf("server: opening store: %w", err)
	}
	engOpts := []feam.Option{
		feam.WithTracer(tracer),
		feam.WithMetrics(metricsReg),
		feam.WithRegistry(registry.New(registry.WithMetrics(metricsReg))),
		feam.WithStore(st),
	}
	if cfg.Workers > 0 {
		engOpts = append(engOpts, feam.WithWorkers(cfg.Workers))
	}
	eng := feam.New(engOpts...)

	sim := execsim.NewSimulator(cfg.Seed)
	sim.TransientRate = 0 // the service answers deterministically

	s := &Server{
		cfg:     cfg,
		tb:      tb,
		eng:     eng,
		co:      feam.NewCoalescer(eng),
		runner:  experiment.NewSimProbeRunner(sim),
		metrics: metricsReg,
		tracer:  tracer,
		st:      st,
		defaultBin: elfimg.MustBuild(elfimg.Spec{
			Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeExec,
			Interp: "/lib64/ld-linux-x86-64.so.2",
			Needed: []string{"libc.so.6"},
			VerNeeds: []elfimg.VerNeed{
				{File: "libc.so.6", Versions: []string{"GLIBC_2.0", "GLIBC_2.3.4"}},
			},
			Imports: []elfimg.ImportedSymbol{
				{Name: "printf", Version: "GLIBC_2.0", Library: "libc.so.6"},
				{Name: "exit", Version: "GLIBC_2.0", Library: "libc.so.6"},
				{Name: "memcpy", Version: "GLIBC_2.3.4", Library: "libc.so.6"},
				{Name: "malloc"},
			},
		}),
	}
	s.defaultDesc, err = eng.Describe(context.Background(), s.defaultBin, "app")
	if err != nil {
		return nil, fmt.Errorf("server: describing built-in binary: %w", err)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("GET /v1/sites", s.handleSites)
	s.mux.HandleFunc("GET /v1/survey/{site}", s.handleSurvey)
	s.mux.HandleFunc("GET /v1/abi/{site}", s.handleABI)
	obs.RegisterDebug(s.mux, metricsReg, tracer)
	return s, nil
}

// Handler returns the service's HTTP surface: the /v1 API plus the
// standard debug routes (/metrics, /metrics.json, /trace, /debug/pprof,
// /debug/vars) on one mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Engine exposes the underlying engine (tests count spans through its
// tracer and metrics).
func (s *Server) Engine() *feam.Engine { return s.eng }

// CoalescerStats reports in-flight deduplication counters.
func (s *Server) CoalescerStats() feam.CoalescerStats { return s.co.Stats() }

// Sites returns the fleet size.
func (s *Server) Sites() int { return len(s.tb.Sites) }

// Run serves the API on addr until ctx is cancelled (SIGTERM in
// feam-server), then drains in-flight predictions for up to grace and
// commits the store. The drain has two layers: http.Server.Shutdown
// waits for active handlers, and Commit waits for prediction work and
// persists the final state.
func (s *Server) Run(ctx context.Context, addr string, grace time.Duration) error {
	srv := NewHTTPServer(addr, s.Handler())
	serveErr := ListenAndServe(ctx, srv, grace)
	if err := s.Commit(context.WithoutCancel(ctx)); err != nil {
		if serveErr == nil {
			return fmt.Errorf("server: committing store on shutdown: %w", err)
		}
		return serveErr
	}
	return serveErr
}

// Commit waits for in-flight prediction work and persists the shutdown
// state: every fleet site's inventory record plus a service manifest
// (fleet size, request counters, coalescing stats), so a restarted
// server — or an operator reading the store — sees what this process
// knew. The engine has already persisted surveys and descriptions as
// they were computed; Commit completes the picture.
func (s *Server) Commit(ctx context.Context) error {
	s.predicting.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	type siteRecord struct {
		Name       string `json:"name"`
		SystemType string `json:"system_type,omitempty"`
		Arch       string `json:"arch,omitempty"`
		OS         string `json:"os,omitempty"`
		Glibc      string `json:"glibc,omitempty"`
		Cores      int    `json:"cores,omitempty"`
	}
	for _, site := range s.tb.Sites {
		rec := siteRecord{
			Name:       site.Name,
			SystemType: site.SystemType,
			Arch:       site.Arch.CPUName,
			OS:         site.OS.Distro + " " + site.OS.Version,
			Glibc:      site.Glibc.String(),
			Cores:      site.Cores,
		}
		payload, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("server: encoding site record %s: %w", site.Name, err)
		}
		if err := s.st.Put(feam.KindSite, site.Name, payload); err != nil {
			return fmt.Errorf("server: persisting site record %s: %w", site.Name, err)
		}
	}
	st := s.co.Stats()
	manifest := map[string]any{
		"sites":          len(s.tb.Sites),
		"predict_leads":  st.Leads,
		"coalesced":      st.Coalesced,
		"coalesce_rate":  st.HitRate(),
		"clean_shutdown": true,
	}
	payload, err := json.Marshal(manifest)
	if err != nil {
		return fmt.Errorf("server: encoding manifest: %w", err)
	}
	if err := s.st.Put("server", "manifest", payload); err != nil {
		return fmt.Errorf("server: persisting manifest: %w", err)
	}
	return nil
}

// ---- v1 envelope ----

// Error codes carried in the v1 envelope. Clients branch on these, not on
// message text.
const (
	// CodeBadRequest marks malformed input (unreadable body, bad JSON,
	// invalid base64, bad query parameters).
	CodeBadRequest = "bad_request"
	// CodeNotFound marks references to sites the fleet does not serve.
	CodeNotFound = "not_found"
	// CodeTooLarge marks binaries over the configured size cap.
	CodeTooLarge = "payload_too_large"
	// CodeUpstream marks prediction or survey work that failed behind the
	// API (engine faults, batch faults).
	CodeUpstream = "upstream_failed"
)

// APIError is the machine-readable error half of the v1 envelope.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Envelope is the uniform v1 response shape: every endpoint answers
// {"data": ...} on success and {"error": {"code", "message"}} on failure.
// A partial prediction that failed mid-ladder carries both.
type Envelope struct {
	Data  any       `json:"data,omitempty"`
	Error *APIError `json:"error,omitempty"`
}

// codeForStatus maps an HTTP status to its envelope error code.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusRequestEntityTooLarge:
		return CodeTooLarge
	default:
		return CodeUpstream
	}
}

// ---- /v1/predict ----

// PredictRequest is one prediction query. An empty BinaryB64 evaluates
// the server's built-in minimal probe binary — feam-load uses this to
// keep request bodies small.
type PredictRequest struct {
	// Site names the target site (required).
	Site string `json:"site"`
	// Name labels a client-supplied binary in descriptions and spans;
	// the built-in binary is always described as "app".
	Name string `json:"name,omitempty"`
	// BinaryB64 is the application image, base64-encoded.
	BinaryB64 string `json:"binary_b64,omitempty"`
	// Probe runs hello-world probes through the simulated batch layer
	// instead of presence-only stack checks.
	Probe bool `json:"probe,omitempty"`
}

// PredictResponse is one prediction answer (the envelope's data half).
type PredictResponse struct {
	Site         string            `json:"site"`
	Binary       string            `json:"binary,omitempty"`
	Ready        bool              `json:"ready"`
	Coalesced    bool              `json:"coalesced"`
	Determinants map[string]string `json:"determinants,omitempty"`
	Reasons      []string          `json:"reasons,omitempty"`
}

// predictBody is the wire shape: either a single request or a batch.
type predictBody struct {
	PredictRequest
	Requests []PredictRequest `json:"requests,omitempty"`
}

// PredictResult is one batch entry's answer, mirroring the top-level
// envelope shape so single and batched responses read the same way.
type PredictResult struct {
	Data  *PredictResponse `json:"data,omitempty"`
	Error *APIError        `json:"error,omitempty"`
}

// batchResponse wraps fan-out results.
type batchResponse struct {
	Results []PredictResult `json:"results"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.metrics.Counter("http_predict_requests").Add(1)
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxBinaryBytes()*2))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var pb predictBody
	if err := json.Unmarshal(body, &pb); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(pb.Requests) == 0 {
		resp, apiErr, status := s.predictOne(r.Context(), pb.PredictRequest)
		var data any
		if resp != nil {
			data = resp // keep a nil *PredictResponse out of the envelope
		}
		s.replyEnvelope(w, status, data, apiErr)
		return
	}
	// Batch: fan out through the engine's bounded worker width. Every
	// entry gets an answer at its input index; per-entry failures are
	// reported in-place, and the batch itself is 200 unless every entry
	// failed.
	results := make([]PredictResult, len(pb.Requests))
	statuses := make([]int, len(pb.Requests))
	workers := s.eng.Workers()
	if workers > len(pb.Requests) {
		workers = len(pb.Requests)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, req := range pb.Requests {
		wg.Add(1)
		go func(i int, req PredictRequest) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var resp *PredictResponse
			resp, results[i].Error, statuses[i] = s.predictOne(r.Context(), req)
			results[i].Data = resp
		}(i, req)
	}
	wg.Wait()
	status := http.StatusOK
	allFailed := true
	for _, st := range statuses {
		if st == http.StatusOK {
			allFailed = false
		}
	}
	if allFailed {
		status = http.StatusBadGateway
	}
	s.replyEnvelope(w, status, batchResponse{Results: results}, nil)
}

// predictOne answers one prediction through the coalescer. The response is
// nil on failures that produced nothing; a partial prediction (determinant
// trail up to the fault) comes back beside its error.
func (s *Server) predictOne(ctx context.Context, req PredictRequest) (*PredictResponse, *APIError, int) {
	site, ok := s.tb.ByName[req.Site]
	if !ok {
		return nil, &APIError{Code: CodeNotFound, Message: fmt.Sprintf("unknown site %q", req.Site)}, http.StatusNotFound
	}
	// Requests without a binary evaluate the built-in one through its
	// precomputed description — the hot path for load generation, and the
	// shape the coalescer dedupes hardest (no per-request hashing).
	evalReq := feam.EvalRequest{
		Binary: s.defaultBin, Desc: s.defaultDesc, Site: site,
	}
	if req.BinaryB64 != "" {
		decoded, err := base64.StdEncoding.DecodeString(req.BinaryB64)
		if err != nil {
			return nil, &APIError{Code: CodeBadRequest, Message: "binary_b64: " + err.Error()}, http.StatusBadRequest
		}
		if int64(len(decoded)) > s.maxBinaryBytes() {
			return nil, &APIError{Code: CodeTooLarge, Message: fmt.Sprintf("binary exceeds %d bytes", s.maxBinaryBytes())}, http.StatusRequestEntityTooLarge
		}
		name := req.Name
		if name == "" {
			name = "app"
		}
		evalReq = feam.EvalRequest{Binary: decoded, BinaryName: name, Site: site}
	}
	if req.Probe {
		evalReq.Options.Runner = s.runner
	}

	s.predicting.Add(1)
	defer s.predicting.Done()
	pred, coalesced, err := s.co.Predict(ctx, evalReq)
	resp := &PredictResponse{Site: req.Site, Coalesced: coalesced}
	if coalesced {
		s.metrics.Counter("http_predict_coalesced").Add(1)
	}
	if pred != nil {
		resp.Binary = pred.Binary
		resp.Ready = pred.Ready
		resp.Reasons = pred.Reasons
		resp.Determinants = map[string]string{}
		for _, d := range feam.Determinants() {
			resp.Determinants[d.String()] = pred.Determinants[d].Outcome.String()
		}
	}
	if err != nil {
		apiErr := &APIError{Code: CodeUpstream, Message: err.Error()}
		if pred == nil {
			// Nothing to ship: the error stands alone.
			return nil, apiErr, http.StatusBadGateway
		}
		// A partial prediction (determinant trail up to the fault) still
		// ships beside the error.
		return resp, apiErr, http.StatusBadGateway
	}
	return resp, nil, http.StatusOK
}

// ---- /v1/sites ----

// SiteInfo is one fleet entry in the /v1/sites listing.
type SiteInfo struct {
	Name       string `json:"name"`
	SystemType string `json:"system_type,omitempty"`
	Arch       string `json:"arch,omitempty"`
	OS         string `json:"os,omitempty"`
	Glibc      string `json:"glibc,omitempty"`
	Cores      int    `json:"cores,omitempty"`
	Stacks     int    `json:"stacks"`
}

// SitesPage is one page of the fleet listing. NextCursor is set when more
// sites follow; pass it back as ?cursor to continue.
type SitesPage struct {
	Sites      []SiteInfo `json:"sites"`
	NextCursor string     `json:"next_cursor,omitempty"`
}

func (s *Server) handleSites(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.fail(w, http.StatusBadRequest, "limit: want a non-negative integer, got %q", v)
			return
		}
		limit = n
	}
	cursor := r.URL.Query().Get("cursor")

	out := make([]SiteInfo, 0, len(s.tb.Sites))
	for _, site := range s.tb.Sites {
		out = append(out, SiteInfo{
			Name:       site.Name,
			SystemType: site.SystemType,
			Arch:       site.Arch.CPUName,
			OS:         site.OS.Distro + " " + site.OS.Version,
			Glibc:      site.Glibc.String(),
			Cores:      site.Cores,
			Stacks:     len(site.Stacks),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	// The cursor is the last name of the previous page; the listing is
	// name-sorted, so resumption is a binary search rather than offset
	// arithmetic that breaks when the fleet changes between pages.
	if cursor != "" {
		i := sort.Search(len(out), func(i int) bool { return out[i].Name > cursor })
		out = out[i:]
	}
	page := SitesPage{Sites: out}
	if limit > 0 && len(out) > limit {
		page.Sites = out[:limit]
		page.NextCursor = out[limit-1].Name
	}
	s.replyEnvelope(w, http.StatusOK, page, nil)
}

// ---- /v1/survey/{site} ----

func (s *Server) handleSurvey(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("site")
	site, ok := s.tb.ByName[name]
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown site %q", name)
		return
	}
	// Discovery follows the engine's locking discipline; repeat surveys
	// are fingerprint-gated cache hits.
	lock := s.eng.SiteLock(name)
	lock.Lock()
	env, err := s.eng.Discover(r.Context(), site)
	lock.Unlock()
	if err != nil {
		s.fail(w, http.StatusBadGateway, "survey of %s failed: %v", name, err)
		return
	}
	s.replyEnvelope(w, http.StatusOK, env, nil)
}

// ---- /v1/abi/{site} ----

// handleABI resolves the built-in probe binary's dynamic symbols against
// one site's exported-symbol index, agreement mode on — the HTTP surface
// of the feam-abi analyzer. The site lock serializes against concurrent
// surveys mutating the same site's cached state.
func (s *Server) handleABI(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("site")
	site, ok := s.tb.ByName[name]
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown site %q", name)
		return
	}
	lock := s.eng.SiteLock(name)
	lock.Lock()
	report, err := s.eng.ABICheck(r.Context(), site, s.defaultBin, "app", true)
	lock.Unlock()
	if err != nil {
		s.fail(w, http.StatusBadGateway, "abi check of %s failed: %v", name, err)
		return
	}
	s.replyEnvelope(w, http.StatusOK, report, nil)
}

// ---- helpers ----

func (s *Server) maxBinaryBytes() int64 {
	if s.cfg.MaxBinaryBytes > 0 {
		return s.cfg.MaxBinaryBytes
	}
	return DefaultMaxBinaryBytes
}

// replyEnvelope writes the uniform v1 response shape. data may be nil
// (error-only), apiErr may be nil (success), or both may be set (a partial
// answer beside its error).
func (s *Server) replyEnvelope(w http.ResponseWriter, status int, data any, apiErr *APIError) {
	if status < 300 {
		s.metrics.Counter("http_2xx").Add(1)
	} else {
		s.metrics.Counter("http_errors").Add(1)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(Envelope{Data: data, Error: apiErr})
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.replyEnvelope(w, status, nil,
		&APIError{Code: codeForStatus(status), Message: fmt.Sprintf(format, args...)})
}
