// Package mpistack models the three open-source MPI implementations the
// paper targets — Open MPI, MPICH2, and MVAPICH2 — at the level FEAM cares
// about: the shared libraries each implementation's compiler wrappers link
// into application binaries (the Table I identification fingerprints), the
// library files an installation places under its prefix, the compiler
// wrappers it ships, and the hidden ABI epoch that makes binaries built
// against one release misbehave on another even though the MPI standard's
// interface is unchanged (MPI is not a link-level specification).
package mpistack

import (
	"fmt"
	"strings"

	"feam/internal/elfimg"
	"feam/internal/libver"
	"feam/internal/sitemodel"
)

// Impl is an MPI implementation.
type Impl int

const (
	OpenMPI Impl = iota
	MPICH2
	MVAPICH2
)

// String returns the display name used in the paper.
func (i Impl) String() string {
	switch i {
	case OpenMPI:
		return "Open MPI"
	case MPICH2:
		return "MPICH2"
	case MVAPICH2:
		return "MVAPICH2"
	default:
		return fmt.Sprintf("Impl(%d)", int(i))
	}
}

// Key returns the lower-case identifier used in paths and stack keys.
func (i Impl) Key() string {
	switch i {
	case OpenMPI:
		return "openmpi"
	case MPICH2:
		return "mpich2"
	case MVAPICH2:
		return "mvapich2"
	default:
		return "unknown"
	}
}

// ImplFromKey parses a lower-case implementation key.
func ImplFromKey(key string) (Impl, bool) {
	switch key {
	case "openmpi":
		return OpenMPI, true
	case "mpich2":
		return MPICH2, true
	case "mvapich2":
		return MVAPICH2, true
	}
	return 0, false
}

// Identify implements the paper's Table I identification scheme: MPI
// implementations are recognized by the link-level dependencies their
// wrappers embed in application binaries.
//
//	MVAPICH2:  libmpich/libmpichf90 together with libibverbs/libibumad
//	Open MPI:  libmpi plus libnsl and libutil
//	MPICH2:    libmpich/libmpichf90 without the InfiniBand identifiers
func Identify(needed []string) (Impl, bool) {
	var hasMpich, hasIB, hasMpi, hasNsl, hasUtil bool
	for _, n := range needed {
		sn, err := libver.ParseSoname(n)
		if err != nil {
			continue
		}
		switch sn.Stem {
		case "mpich", "mpichf90":
			hasMpich = true
		case "ibverbs", "ibumad":
			hasIB = true
		case "mpi", "mpi_f77", "mpi_f90":
			hasMpi = true
		case "nsl":
			hasNsl = true
		case "util":
			hasUtil = true
		}
	}
	switch {
	case hasMpich && hasIB:
		return MVAPICH2, true
	case hasMpich:
		return MPICH2, true
	case hasMpi && hasNsl && hasUtil:
		return OpenMPI, true
	case hasMpi:
		// Open MPI linked statically against its helpers still identifies.
		return OpenMPI, true
	}
	return 0, false
}

// FingerprintTable returns the rows of Table I for reporting.
func FingerprintTable() [][2]string {
	return [][2]string{
		{"MVAPICH2", "libmpich/libmpichf90, libibverbs, libibumad"},
		{"Open MPI", "libnsl, libutil"},
		{"MPICH2", "libmpich/libmpichf90 (and not other identifiers)"},
	}
}

// Release is a specific version of an implementation.
type Release struct {
	Impl    Impl
	Version string
}

// String renders "Open MPI v1.4".
func (r Release) String() string { return fmt.Sprintf("%s v%s", r.Impl, r.Version) }

// ABIEpoch is the ground-truth binary-interface generation of the release.
// Binaries built against epoch E need epoch >= E at run time when they use
// advanced MPI features (workload.MPILevel >= 3); the paper observed exactly
// this with Open MPI 1.4 binaries on Open MPI 1.3 systems.
func (r Release) ABIEpoch() int {
	major := libver.MustParseVersion(r.Version)
	switch r.Impl {
	case OpenMPI:
		return 10*major.Major() + minor(major)
	case MVAPICH2:
		return 10*major.Major() + minor(major)
	case MPICH2:
		// MPICH2 1.3 and 1.4 kept a stable ABI.
		return 13
	}
	return 0
}

func minor(v libver.Version) int {
	if len(v) > 1 {
		return v[1]
	}
	return 0
}

// MPISonames returns the sonames the compiler wrappers embed into
// application binaries (DT_NEEDED), excluding system libraries: the MPI
// libraries themselves plus the implementation's identifying dependencies.
func (r Release) MPISonames(fortran bool, interconnect string) []string {
	switch r.Impl {
	case OpenMPI:
		out := []string{"libmpi.so.0"}
		if fortran {
			out = append(out, "libmpi_f77.so.0", "libmpi_f90.so.0")
		}
		out = append(out, "libopen-rte.so.0", "libopen-pal.so.0", "libnsl.so.1", "libutil.so.1")
		return out
	case MVAPICH2:
		so := r.mpichSoname()
		out := []string{so}
		if fortran {
			out = append(out, strings.Replace(so, "libmpich", "libmpichf90", 1))
		}
		out = append(out, "libibverbs.so.1", "libibumad.so.3")
		return out
	case MPICH2:
		so := r.mpichSoname()
		out := []string{so}
		if fortran {
			out = append(out, strings.Replace(so, "libmpich", "libmpichf90", 1))
		}
		out = append(out, "libmpl.so.1", "libopa.so.1")
		return out
	}
	return nil
}

// mpichSoname returns the libmpich DT_SONAME for MPICH-derived releases.
// MVAPICH2 bumped the minor soname between 1.2 and the 1.7 series, which is
// why binaries built against one release go missing-library on sites that
// carry only the other.
func (r Release) mpichSoname() string {
	v := libver.MustParseVersion(r.Version)
	if r.Impl == MVAPICH2 && v.Less(libver.V(1, 7)) {
		return "libmpich.so.1.0"
	}
	return "libmpich.so.1.2"
}

// LibraryFiles returns the shared objects an installation of this release
// places in <prefix>/lib, with their dependency and version metadata.
// interconnect selects whether the transport libraries are linked.
func (r Release) LibraryFiles(fortran bool, interconnect string, glibc libver.Version) []sitemodel.Library {
	// MPI libraries are compiled from source at their site, so like any
	// locally built code they reference symbols up to the build glibc —
	// which is why library copies taken from a newer-glibc site cannot be
	// used at an older one (§VI.C's unresolvable copies).
	ladder := libver.GlibcSymbolVersions(glibc)
	refs := ladder
	if len(ladder) > 1 {
		refs = []string{ladder[0], ladder[len(ladder)-1]}
	}
	libcNeed := []elfimg.VerNeed{{File: "libc.so.6", Versions: refs}}
	epoch := r.ABIEpoch()
	comment := fmt.Sprintf("%s %s", r.Impl, r.Version)
	// The MPI entry points every implementation exports (unversioned — the
	// implementations of this era did not version their symbols).
	mpiExports := []elfimg.ExportedSymbol{
		{Name: "MPI_Init"}, {Name: "MPI_Comm_rank"}, {Name: "MPI_Comm_size"},
		{Name: "MPI_Send"}, {Name: "MPI_Recv"}, {Name: "MPI_Finalize"},
		{Name: "MPI_Allreduce"}, {Name: "MPI_Bcast"}, {Name: "MPI_Alltoall"},
		{Name: "MPI_Put"}, {Name: "MPI_Win_create"}, {Name: "MPI_Type_create_struct"},
	}

	switch r.Impl {
	case OpenMPI:
		needed := []string{"libopen-rte.so.0", "libopen-pal.so.0", "libnsl.so.1", "libutil.so.1", "libm.so.6", "libpthread.so.0", "libc.so.6"}
		if interconnect == "infiniband" {
			needed = append([]string{"libibverbs.so.1"}, needed...)
		}
		libs := []sitemodel.Library{
			{FileName: "libmpi.so.0.0." + fmt.Sprint(minor(libver.MustParseVersion(r.Version))),
				Soname: "libmpi.so.0", Needed: needed, VerNeeds: libcNeed,
				Exports:  mpiExports,
				Comments: []string{comment}, ABIEpoch: epoch, TextSize: 1800 << 10},
			{FileName: "libopen-rte.so.0.0.0", Needed: []string{"libopen-pal.so.0", "libnsl.so.1", "libutil.so.1", "libc.so.6"},
				VerNeeds: libcNeed, Comments: []string{comment}, ABIEpoch: epoch, TextSize: 700 << 10},
			{FileName: "libopen-pal.so.0.0.0", Needed: []string{"libnsl.so.1", "libutil.so.1", "libc.so.6"},
				VerNeeds: libcNeed, Comments: []string{comment}, ABIEpoch: epoch, TextSize: 500 << 10},
		}
		if fortran {
			libs = append(libs,
				sitemodel.Library{FileName: "libmpi_f77.so.0.0.0", Needed: []string{"libmpi.so.0", "libc.so.6"},
					VerNeeds: libcNeed, Comments: []string{comment}, ABIEpoch: epoch, TextSize: 200 << 10},
				sitemodel.Library{FileName: "libmpi_f90.so.0.0.0", Needed: []string{"libmpi.so.0", "libc.so.6"},
					VerNeeds: libcNeed, Comments: []string{comment}, ABIEpoch: epoch, TextSize: 120 << 10})
		}
		return libs

	case MVAPICH2:
		so := r.mpichSoname()
		needed := []string{"libibverbs.so.1", "libibumad.so.3", "librdmacm.so.1", "libpthread.so.0", "librt.so.1", "libc.so.6"}
		libs := []sitemodel.Library{
			{FileName: so + ".0", Soname: so, Needed: needed, VerNeeds: libcNeed,
				Exports:  mpiExports,
				Comments: []string{comment}, ABIEpoch: epoch, TextSize: 2600 << 10},
		}
		if fortran {
			f90 := strings.Replace(so, "libmpich", "libmpichf90", 1)
			libs = append(libs, sitemodel.Library{FileName: f90 + ".0", Soname: f90,
				Needed: append([]string{so}, "libc.so.6"), VerNeeds: libcNeed,
				Comments: []string{comment}, ABIEpoch: epoch, TextSize: 300 << 10})
		}
		return libs

	case MPICH2:
		so := r.mpichSoname()
		libs := []sitemodel.Library{
			{FileName: so + ".0", Soname: so,
				Needed:   []string{"libmpl.so.1", "libopa.so.1", "libpthread.so.0", "librt.so.1", "libc.so.6"},
				VerNeeds: libcNeed, Exports: mpiExports,
				Comments: []string{comment}, ABIEpoch: epoch, TextSize: 2200 << 10},
			{FileName: "libmpl.so.1.0.0", Needed: []string{"libc.so.6"}, VerNeeds: libcNeed,
				Comments: []string{comment}, TextSize: 60 << 10},
			{FileName: "libopa.so.1.0.0", Needed: []string{"libpthread.so.0", "libc.so.6"}, VerNeeds: libcNeed,
				Comments: []string{comment}, TextSize: 40 << 10},
		}
		if fortran {
			f90 := strings.Replace(so, "libmpich", "libmpichf90", 1)
			libs = append(libs, sitemodel.Library{FileName: f90 + ".0", Soname: f90,
				Needed: []string{so, "libc.so.6"}, VerNeeds: libcNeed,
				Comments: []string{comment}, ABIEpoch: r.ABIEpoch(), TextSize: 280 << 10})
		}
		return libs
	}
	return nil
}
