package mpistack

import (
	"strings"
	"testing"

	"feam/internal/elfimg"
	"feam/internal/libver"
	"feam/internal/sitemodel"
)

func TestImplNames(t *testing.T) {
	for impl, key := range map[Impl]string{OpenMPI: "openmpi", MPICH2: "mpich2", MVAPICH2: "mvapich2"} {
		if impl.Key() != key {
			t.Errorf("%v.Key() = %q", impl, impl.Key())
		}
		got, ok := ImplFromKey(key)
		if !ok || got != impl {
			t.Errorf("ImplFromKey(%q) = %v, %v", key, got, ok)
		}
	}
	if _, ok := ImplFromKey("lam"); ok {
		t.Error("ImplFromKey accepted junk")
	}
	if OpenMPI.String() != "Open MPI" || MPICH2.String() != "MPICH2" || MVAPICH2.String() != "MVAPICH2" {
		t.Error("display names wrong")
	}
}

// TestIdentifyTable1 checks the identification scheme against the paper's
// Table I fingerprints.
func TestIdentifyTable1(t *testing.T) {
	cases := []struct {
		name   string
		needed []string
		want   Impl
		ok     bool
	}{
		{"openmpi C", []string{"libmpi.so.0", "libopen-rte.so.0", "libopen-pal.so.0", "libnsl.so.1", "libutil.so.1", "libm.so.6", "libc.so.6"}, OpenMPI, true},
		{"openmpi fortran", []string{"libmpi_f77.so.0", "libmpi.so.0", "libnsl.so.1", "libutil.so.1", "libc.so.6"}, OpenMPI, true},
		{"mvapich2", []string{"libmpich.so.1.2", "libibverbs.so.1", "libibumad.so.3", "libc.so.6"}, MVAPICH2, true},
		{"mvapich2 fortran", []string{"libmpichf90.so.1.0", "libmpich.so.1.0", "libibverbs.so.1", "libibumad.so.3", "libc.so.6"}, MVAPICH2, true},
		{"mpich2", []string{"libmpich.so.1.2", "libmpl.so.1", "libopa.so.1", "libc.so.6"}, MPICH2, true},
		{"serial", []string{"libm.so.6", "libc.so.6"}, 0, false},
		{"empty", nil, 0, false},
	}
	for _, c := range cases {
		got, ok := Identify(c.needed)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("%s: Identify = %v, %v (want %v, %v)", c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestFingerprintTable(t *testing.T) {
	rows := FingerprintTable()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "MVAPICH2" || !strings.Contains(rows[0][1], "libibverbs") {
		t.Errorf("row 0 = %v", rows[0])
	}
}

func TestABIEpoch(t *testing.T) {
	if e13, e14 := (Release{OpenMPI, "1.3"}).ABIEpoch(), (Release{OpenMPI, "1.4"}).ABIEpoch(); e13 >= e14 {
		t.Errorf("Open MPI epochs: 1.3=%d 1.4=%d", e13, e14)
	}
	// MPICH2 1.3 and 1.4 are ABI compatible.
	if (Release{MPICH2, "1.3"}).ABIEpoch() != (Release{MPICH2, "1.4"}).ABIEpoch() {
		t.Error("MPICH2 1.3/1.4 should share an epoch")
	}
	if (Release{MVAPICH2, "1.2"}).ABIEpoch() >= (Release{MVAPICH2, "1.7a2"}).ABIEpoch() {
		t.Error("MVAPICH2 1.7 should be newer than 1.2")
	}
}

func TestMPISonames(t *testing.T) {
	// Open MPI keeps the same soname across 1.3/1.4.
	s13 := (Release{OpenMPI, "1.3"}).MPISonames(false, "infiniband")
	s14 := (Release{OpenMPI, "1.4"}).MPISonames(false, "ethernet")
	if s13[0] != "libmpi.so.0" || s14[0] != "libmpi.so.0" {
		t.Errorf("Open MPI sonames: %v vs %v", s13, s14)
	}
	// The Table I identifiers are present.
	joined := strings.Join(s14, ",")
	if !strings.Contains(joined, "libnsl.so.1") || !strings.Contains(joined, "libutil.so.1") {
		t.Errorf("Open MPI link set lacks identifiers: %v", s14)
	}
	// Fortran adds the binding libraries.
	sf := (Release{OpenMPI, "1.4"}).MPISonames(true, "ethernet")
	if !strings.Contains(strings.Join(sf, ","), "libmpi_f90.so.0") {
		t.Errorf("fortran link set = %v", sf)
	}
	// MVAPICH2 changed sonames between 1.2 and 1.7.
	mv12 := (Release{MVAPICH2, "1.2"}).MPISonames(false, "infiniband")
	mv17 := (Release{MVAPICH2, "1.7a2"}).MPISonames(false, "infiniband")
	if mv12[0] != "libmpich.so.1.0" || mv17[0] != "libmpich.so.1.2" {
		t.Errorf("MVAPICH2 sonames: %v vs %v", mv12[0], mv17[0])
	}
	if !strings.Contains(strings.Join(mv17, ","), "libibverbs.so.1") {
		t.Errorf("MVAPICH2 link set lacks IB identifiers: %v", mv17)
	}
	// MPICH2 has no IB identifiers.
	mp := (Release{MPICH2, "1.4"}).MPISonames(true, "ethernet")
	if strings.Contains(strings.Join(mp, ","), "ibverbs") {
		t.Errorf("MPICH2 link set has IB libs: %v", mp)
	}
	// Identification round-trips for every release.
	for _, r := range []Release{{OpenMPI, "1.3"}, {OpenMPI, "1.4"}, {MPICH2, "1.4"}, {MVAPICH2, "1.2"}, {MVAPICH2, "1.7a2"}} {
		needed := append(r.MPISonames(true, "infiniband"), "libm.so.6", "libc.so.6")
		got, ok := Identify(needed)
		if !ok || got != r.Impl {
			t.Errorf("Identify(%v link set) = %v, %v", r, got, ok)
		}
	}
}

func newTestSite() *sitemodel.Site {
	s := sitemodel.New("india",
		sitemodel.Arch{Machine: elfimg.EMX8664, Class: elfimg.Class64, CPUName: "Xeon X5570", FeatureLevel: 2},
		sitemodel.OSInfo{Distro: "Red Hat Enterprise Linux Server", Version: "5.6", Kernel: "2.6.18-238.el5", ReleaseFile: "/etc/redhat-release"},
		libver.V(2, 5))
	if err := s.InstallCLibrary(); err != nil {
		panic(err)
	}
	return s
}

func TestMaterialize(t *testing.T) {
	site := newTestSite()
	inst := &Install{
		Release:         Release{OpenMPI, "1.4"},
		CompilerFamily:  "intel",
		CompilerVersion: "11.1",
		Interconnect:    "infiniband",
		WithFortran:     true,
	}
	rec, err := inst.Materialize(site)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Key != "openmpi-1.4-intel" {
		t.Errorf("Key = %q", rec.Key)
	}
	if rec.Prefix != "/opt/openmpi-1.4-intel" {
		t.Errorf("Prefix = %q", rec.Prefix)
	}
	// Libraries are genuine ELF images in the prefix.
	data, err := site.FS().ReadFile("/opt/openmpi-1.4-intel/lib/libmpi.so.0")
	if err != nil {
		t.Fatal(err)
	}
	f, err := elfimg.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Soname != "libmpi.so.0" {
		t.Errorf("soname = %q", f.Soname)
	}
	// IB-built libmpi depends on libibverbs.
	hasIB := false
	for _, n := range f.Needed {
		if n == "libibverbs.so.1" {
			hasIB = true
		}
	}
	if !hasIB {
		t.Errorf("IB build lacks libibverbs: %v", f.Needed)
	}
	// Wrappers exist with version output.
	for _, w := range []string{"mpicc", "mpif90", "mpiexec"} {
		p := "/opt/openmpi-1.4-intel/bin/" + w
		if !site.FS().Exists(p) {
			t.Errorf("missing wrapper %s", p)
			continue
		}
	}
	out, ok := site.FS().Attr("/opt/openmpi-1.4-intel/bin/mpicc", sitemodel.AttrExecOutput)
	if !ok || !strings.Contains(out, "icc (ICC) 11.1") {
		t.Errorf("wrapper version output = %q", out)
	}
	// Registry entry is queryable.
	if site.FindStack("openmpi-1.4-intel") != rec {
		t.Error("stack not registered")
	}
	// Fortran bindings present.
	if !site.FS().Exists("/opt/openmpi-1.4-intel/lib/libmpi_f90.so.0") {
		t.Error("missing Fortran binding library")
	}
}

func TestMaterializeMVAPICH2AndMPICH2(t *testing.T) {
	site := newTestSite()
	mv := &Install{Release: Release{MVAPICH2, "1.7a2"}, CompilerFamily: "gnu", CompilerVersion: "4.1.2",
		Interconnect: "infiniband", WithFortran: true}
	if _, err := mv.Materialize(site); err != nil {
		t.Fatal(err)
	}
	if !site.FS().Exists("/opt/mvapich2-1.7a2-gnu/lib/libmpich.so.1.2") {
		t.Error("MVAPICH2 1.7 library missing")
	}
	mp := &Install{Release: Release{MPICH2, "1.4"}, CompilerFamily: "gnu", CompilerVersion: "4.1.2",
		Interconnect: "ethernet", WithFortran: true}
	if _, err := mp.Materialize(site); err != nil {
		t.Fatal(err)
	}
	for _, lib := range []string{"libmpich.so.1.2", "libmpl.so.1", "libopa.so.1"} {
		if !site.FS().Exists("/opt/mpich2-1.4-gnu/lib/" + lib) {
			t.Errorf("MPICH2 library missing: %s", lib)
		}
	}
	// ABI epochs recorded on the installed files.
	if got := site.LibraryABIEpoch("/opt/mvapich2-1.7a2-gnu/lib/libmpich.so.1.2"); got != 17 {
		t.Errorf("MVAPICH2 epoch = %d", got)
	}
}

func TestWrapperVersionOutput(t *testing.T) {
	for family, want := range map[string]string{
		"intel": "icc (ICC)",
		"gnu":   "gcc (GCC)",
		"pgi":   "pgcc",
	} {
		in := &Install{Release: Release{OpenMPI, "1.4"}, CompilerFamily: family, CompilerVersion: "1.0"}
		if !strings.Contains(in.WrapperVersionOutput(), want) {
			t.Errorf("%s output = %q", family, in.WrapperVersionOutput())
		}
	}
}
