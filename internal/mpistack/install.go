package mpistack

import (
	"fmt"

	"feam/internal/sitemodel"
)

// indexOfSo returns the index of the ".so" suffix in a library file name,
// or -1.
func indexOfSo(name string) int {
	for i := 0; i+3 <= len(name); i++ {
		if name[i:i+3] == ".so" {
			return i
		}
	}
	return -1
}

// Install describes one MPI stack installation at a site: the release, the
// compiler it was built with and wraps, the interconnect it was built for,
// and where it lives.
type Install struct {
	Release
	// CompilerFamily is "gnu", "intel", or "pgi"; CompilerVersion its
	// release string.
	CompilerFamily  string
	CompilerVersion string
	// Interconnect is "ethernet" or "infiniband".
	Interconnect string
	// Prefix is the installation root; derived from the key when empty.
	Prefix string
	// Broken marks a misconfigured stack that cannot run any program.
	Broken bool
	// WithFortran controls whether Fortran bindings and wrappers are
	// installed (true for every stack in the paper's testbed).
	WithFortran bool
	// WithStaticLibs additionally installs static archives (.a files),
	// enabling statically linked application builds.
	WithStaticLibs bool
}

// Key returns the canonical stack name, e.g. "openmpi-1.4-intel".
func (in *Install) Key() string {
	return fmt.Sprintf("%s-%s-%s", in.Impl.Key(), in.Version, in.CompilerFamily)
}

// DefaultPrefix returns the conventional installation root.
func (in *Install) DefaultPrefix() string { return "/opt/" + in.Key() }

// WrapperVersionOutput is the text `mpicc -V`-style queries print: it
// reveals the underlying compiler, the way the paper's EDC learns which
// compiler a wrapper is associated with.
func (in *Install) WrapperVersionOutput() string {
	var cc string
	switch in.CompilerFamily {
	case "intel":
		cc = fmt.Sprintf("icc (ICC) %s", in.CompilerVersion)
	case "pgi":
		cc = fmt.Sprintf("pgcc %s", in.CompilerVersion)
	default:
		cc = fmt.Sprintf("gcc (GCC) %s", in.CompilerVersion)
	}
	return fmt.Sprintf("%s for %s version %s\n%s\n", "mpicc", in.Impl, in.Version, cc)
}

// Materialize installs the stack onto a site: library files under
// <prefix>/lib, compiler wrappers and launchers under <prefix>/bin, and a
// ground-truth StackRecord in the site registry. It does NOT create
// modulefiles or softenv keys — environment-management wiring is a site
// configuration decision made by the testbed layer.
func (in *Install) Materialize(site *sitemodel.Site) (*sitemodel.StackRecord, error) {
	if in.Prefix == "" {
		in.Prefix = in.DefaultPrefix()
	}
	libDir := in.Prefix + "/lib"
	binDir := in.Prefix + "/bin"
	for _, lib := range in.Release.LibraryFiles(in.WithFortran, in.Interconnect, site.Glibc) {
		if _, err := site.InstallLibrary(libDir, lib); err != nil {
			return nil, fmt.Errorf("mpistack: %s: %v", in.Key(), err)
		}
	}

	wrappers := []string{"mpicc", "mpiexec", "mpirun"}
	if in.WithFortran {
		wrappers = append(wrappers, "mpif77", "mpif90")
	}
	for _, w := range wrappers {
		p := binDir + "/" + w
		body := fmt.Sprintf("#!/bin/sh\n# %s wrapper for %s %s (%s %s)\n",
			w, in.Impl, in.Version, in.CompilerFamily, in.CompilerVersion)
		if err := site.FS().WriteString(p, body); err != nil {
			return nil, err
		}
		if err := site.FS().SetAttr(p, sitemodel.AttrExecOutput, in.WrapperVersionOutput()); err != nil {
			return nil, err
		}
	}

	if in.WithStaticLibs {
		for _, lib := range in.Release.LibraryFiles(in.WithFortran, in.Interconnect, site.Glibc) {
			base := lib.FileName
			if dot := indexOfSo(base); dot > 0 {
				base = base[:dot]
			}
			archive := libDir + "/" + base + ".a"
			if err := site.FS().WriteString(archive, "!<arch>\n// static archive stub for "+lib.FileName+"\n"); err != nil {
				return nil, err
			}
		}
	}

	rec := &sitemodel.StackRecord{
		Key:             in.Key(),
		Impl:            in.Impl.Key(),
		ImplVersion:     in.Version,
		CompilerFamily:  in.CompilerFamily,
		CompilerVersion: in.CompilerVersion,
		Prefix:          in.Prefix,
		Interconnect:    in.Interconnect,
		ABIEpoch:        in.ABIEpoch(),
		Broken:          in.Broken,
		StaticLibs:      in.WithStaticLibs,
	}
	site.RegisterStack(rec)
	return rec, nil
}
