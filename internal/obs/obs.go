// Package obs is FEAM's observability layer: hierarchical span tracing,
// lock-free latency histograms, and an exportable metrics registry.
//
// The paper's value claim is quantitative — Table III prediction accuracy
// and the per-determinant trail of §V.C — so the pipeline must be able to
// show *where* time goes (describe vs. discover vs. probe runs vs. staging)
// and which determinant dominates a survey. This package provides the three
// pieces the engine threads through every operation:
//
//   - Tracer: spans (operation + site + determinant with parent links,
//     status, attributes and point-in-time events) collected in an
//     in-memory ring buffer and exportable as JSONL. Sinks observe span
//     lifecycle; the registry sink derives all engine counters from them.
//   - Histogram: log-bucketed latency histograms recorded with atomics
//     only, safe for concurrent recording from engine workers without
//     coordination.
//   - Registry: a named collection of histograms and counters whose
//     snapshot renders as JSON or Prometheus text exposition format.
//
// The span taxonomy (operation vocabulary) is fixed so that exports are
// stable across tools; see the Op* and Ev* constants.
package obs

import "time"

// Canonical span operations emitted by the FEAM prediction pipeline. The
// registry sink keys one latency histogram per operation.
const (
	// OpDescribe is one Binary Description Component run (cache hits
	// included; a hit shows up as a microsecond-scale sample).
	OpDescribe = "describe"
	// OpDiscover is one Environment Discovery Component survey.
	OpDiscover = "discover"
	// OpShardWalk is one shard-directory walk inside a survey. Only shards
	// whose tree stamp changed since the cached record are walked, so the
	// span count is the observable measure of survey incrementality: an
	// unchanged site emits none, a C-library upgrade emits exactly one.
	OpShardWalk = "shard_walk"
	// OpEvaluate is one Target Evaluation Component run over the
	// determinant ladder.
	OpEvaluate = "evaluate"
	// OpDeterminant is one determinant evaluator's turn inside OpEvaluate.
	OpDeterminant = "determinant"
	// OpProbe is one probe-program execution attempt.
	OpProbe = "probe"
	// OpStaging is one transactional library-staging plan (commit or
	// rollback); OpStagingOp is one filesystem operation attempt inside it.
	OpStaging   = "staging"
	OpStagingOp = "staging_op"
	// OpRetrySleep aggregates backoff time spent between retry attempts.
	// It is recorded from retry events rather than wrapped in spans.
	OpRetrySleep = "retry_sleep"
	// OpAssess is one whole-site assessment inside a RankSites survey
	// (survey + evaluation under the site lock).
	OpAssess = "assess"
	// OpRegistry is one SiteRegistry cache consultation (survey or
	// description). Cache hits land here instead of OpDiscover, so a
	// discover span always means a real site survey ran.
	OpRegistry = "registry"
	// OpStoreLoad and OpStoreCommit are persistent-store record reads and
	// atomic-rename writes; their histograms are the store's latency
	// surface (`store_load` / `store_commit`).
	OpStoreLoad   = "store_load"
	OpStoreCommit = "store_commit"
	// OpSymIndex is one per-site exported-symbol index build (a cached
	// index emits no span); OpABICheck is one symbol-resolution pass over
	// that index. Their histograms are the ABI analyzer's index-build and
	// resolve latency surfaces.
	OpSymIndex = "sym_index"
	OpABICheck = "abi_check"
)

// Canonical span event names.
const (
	// EvCache marks a memoized-component lookup (attrs: component, key, hit).
	EvCache = "cache"
	// EvProbeRetry marks a transient probe failure about to be retried
	// (attrs: stack, attempt, backoff_ns).
	EvProbeRetry = "probe_retry"
	// EvStagingRetry marks a transient staging-write failure about to be
	// retried (attrs: path, attempt, backoff_ns).
	EvStagingRetry = "staging_retry"
)

// Canonical attribute keys.
const (
	AttrReady     = "ready"
	AttrSuccess   = "success"
	AttrCommitted = "committed"
	AttrComponent = "component"
	AttrKey       = "key"
	AttrHit       = "hit"
	AttrStack     = "stack"
	AttrAttempt   = "attempt"
	AttrBackoffNS = "backoff_ns"
	AttrLibs      = "libs"
	AttrDir       = "dir"
	AttrPath      = "path"
	AttrDetail    = "detail"
	// AttrSource distinguishes which layer satisfied a cache lookup
	// ("registry" for the in-memory shard, "store" for rehydration).
	AttrSource = "source"
	// AttrKind is a persistent-store record namespace ("survey", "bdc",
	// "bundle", "site").
	AttrKind = "kind"
)

// Event is a point-in-time annotation on a span.
type Event struct {
	Name string `json:"name"`
	// Offset is the time since the owning span started.
	Offset time.Duration     `json:"offset_ns"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Span is one traced operation. A span is created with Tracer.Start, owned
// by a single goroutine until End, and immutable afterwards. Site, Binary,
// and Determinant are first-class because they are the paper's natural
// trace coordinates; everything else goes in Attrs.
type Span struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Op     string `json:"op"`

	Site        string `json:"site,omitempty"`
	Binary      string `json:"binary,omitempty"`
	Determinant string `json:"determinant,omitempty"`

	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	// Status is "ok" or "error"; ErrMsg carries the error text.
	Status string `json:"status,omitempty"`
	ErrMsg string `json:"err,omitempty"`

	Attrs  map[string]string `json:"attrs,omitempty"`
	Events []Event           `json:"events,omitempty"`

	tracer *Tracer
	cause  error
}

// Cause returns the error the span ended with (nil for ok spans). Sinks
// use it to hand the original error object to legacy observers.
func (s *Span) Cause() error {
	if s == nil {
		return nil
	}
	return s.cause
}

// SetAttr sets one attribute. Safe on a nil span (no-op).
func (s *Span) SetAttr(key, value string) *Span {
	if s == nil {
		return nil
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[key] = value
	return s
}

// Event records a point-in-time event with key/value attribute pairs and
// notifies the tracer's sinks. Safe on a nil span (no-op).
func (s *Span) Event(name string, kv ...string) {
	if s == nil || s.tracer == nil {
		return
	}
	ev := Event{Name: name, Offset: s.tracer.now().Sub(s.Start)}
	if len(kv) > 0 {
		ev.Attrs = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			ev.Attrs[kv[i]] = kv[i+1]
		}
	}
	s.Events = append(s.Events, ev)
	s.tracer.spanEvent(s, ev)
}

// End finishes the span: the duration is fixed, the status derived from
// err, the span is pushed into the tracer's ring buffer, and sinks are
// notified. Safe on a nil span (no-op). A span must be ended exactly once.
func (s *Span) End(err error) {
	if s == nil || s.tracer == nil {
		return
	}
	s.Duration = s.tracer.now().Sub(s.Start)
	if err != nil {
		s.Status = StatusError
		s.ErrMsg = err.Error()
		s.cause = err
	} else {
		s.Status = StatusOK
	}
	s.tracer.finish(s)
}

// Span status values.
const (
	StatusOK    = "ok"
	StatusError = "error"
)
