package obs

import (
	"sync"
	"testing"
	"time"
)

func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{2*time.Microsecond + 1, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10}, // 1024µs > 512µs (idx 9), ≤ 1024µs (idx 10)
		{time.Second, 20},      // 1e6µs ≤ 2^20µs
		{BucketBound(NumBuckets - 1), NumBuckets - 1},
		{BucketBound(NumBuckets-1) + 1, NumBuckets},
		{time.Hour, NumBuckets},
	}
	for _, c := range cases {
		d := c.d
		if d < 0 {
			d = 0 // Observe clamps; bucketIndex expects non-negative
		}
		if got := bucketIndex(d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every finite bucket's bound must land in its own bucket (inclusive
	// upper bound), and one past it in the next.
	for i := 0; i < NumBuckets; i++ {
		if got := bucketIndex(BucketBound(i)); got != i {
			t.Errorf("bound of bucket %d maps to %d", i, got)
		}
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := &Histogram{op: OpProbe}
	samples := []time.Duration{
		500 * time.Nanosecond,
		time.Microsecond,
		3 * time.Microsecond,
		time.Millisecond,
		2 * time.Second,
		-time.Second, // clamps to 0 → bucket 0
	}
	for _, d := range samples {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Op != OpProbe {
		t.Errorf("op = %q", s.Op)
	}
	if s.Count != uint64(len(samples)) {
		t.Errorf("count = %d, want %d", s.Count, len(samples))
	}
	wantSum := 500*time.Nanosecond + time.Microsecond + 3*time.Microsecond + time.Millisecond + 2*time.Second
	if s.Sum != wantSum {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
	if s.Max != 2*time.Second {
		t.Errorf("max = %v", s.Max)
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Errorf("bucket counts sum to %d, count is %d", total, s.Count)
	}
	if s.Buckets[0].LE != BucketBound(0) || s.Buckets[0].Count != 3 {
		t.Errorf("first bucket = %+v, want le=1µs count=3", s.Buckets[0])
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := &Histogram{op: OpRetrySleep}
	h.Observe(10 * time.Hour)
	s := h.Snapshot()
	if len(s.Buckets) != 1 || s.Buckets[0].LE != -1 {
		t.Fatalf("buckets = %+v, want single overflow (LE=-1)", s.Buckets)
	}
	if got := s.Quantile(0.5); got != 10*time.Hour {
		t.Errorf("overflow quantile = %v, want the observed max", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{op: OpEvaluate}
	// 90 fast samples (≤1µs) and 10 slow (≤1.024ms bucket).
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != BucketBound(0) {
		t.Errorf("p50 = %v, want %v", got, BucketBound(0))
	}
	if got := s.Quantile(0.95); got != s.Max {
		// The p95 sample sits in the 1.024ms bucket, whose bound exceeds
		// the observed max — the estimate caps at the max.
		t.Errorf("p95 = %v, want max %v", got, s.Max)
	}
	if got := s.Quantile(1); got != s.Max {
		t.Errorf("p100 = %v, want max %v", got, s.Max)
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	if got := s.Mean(); got != (90*time.Microsecond+10*time.Millisecond)/100 {
		t.Errorf("mean = %v", got)
	}
}

// TestHistogramConcurrentRecordingLosesNoSamples drives recording from many
// goroutines: the atomic counters must account for every sample.
func TestHistogramConcurrentRecordingLosesNoSamples(t *testing.T) {
	h := &Histogram{op: OpProbe}
	const goroutines, per = 16, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*i) * time.Nanosecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
	s := h.Snapshot()
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != goroutines*per {
		t.Fatalf("bucket total = %d, want %d", total, goroutines*per)
	}
}

// BenchmarkHistogramObserve bounds the per-sample recording cost — it must
// stay far below the microseconds-scale operations it measures (the <5%
// overhead budget on the ranking fan-out).
func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{op: OpEvaluate}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := 37 * time.Microsecond
		for pb.Next() {
			h.Observe(d)
		}
	})
}

// BenchmarkSpanLifecycle measures a full start/attr/end cycle, the unit of
// tracing overhead added around each pipeline operation.
func BenchmarkSpanLifecycle(b *testing.B) {
	tr := NewTracer(1024)
	tr.AddSink(NewRegistrySink(NewRegistry()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(OpDeterminant, WithSite("india"), WithBinary("cg"))
		sp.SetAttr("outcome", "pass")
		sp.End(nil)
	}
}
