package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// DebugHandler serves the standard Go debug surface plus FEAM's own
// observability exports on one mux:
//
//	/debug/pprof/...   runtime profiles (net/http/pprof)
//	/debug/vars        expvar JSON
//	/metrics           reg in Prometheus text exposition format
//	/metrics.json      reg as indented JSON
//	/trace             tracer ring buffer as JSONL
//
// Either reg or tracer may be nil; the corresponding endpoints then serve
// empty documents.
func DebugHandler(reg *Registry, tracer *Tracer) http.Handler {
	mux := http.NewServeMux()
	RegisterDebug(mux, reg, tracer)
	return mux
}

// RegisterDebug installs the debug routes on an existing mux, so a server
// that owns its own mux (feam-server) can mount them beside its API
// routes instead of running a second listener.
func RegisterDebug(mux *http.ServeMux, reg *Registry, tracer *Tracer) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			_ = reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if reg == nil {
			_, _ = w.Write([]byte("{}\n"))
			return
		}
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		_ = tracer.WriteJSONL(w)
	})
}
