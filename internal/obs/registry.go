package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct{ n atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.n.Load() }

// Registry is a named collection of latency histograms (one per pipeline
// operation) and event counters. Lookups take a read lock only; recording
// into the returned histogram or counter is lock-free. Snapshots render as
// JSON or Prometheus text exposition format.
type Registry struct {
	mu       sync.RWMutex
	hists    map[string]*Histogram
	counters map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{hists: map[string]*Histogram{}, counters: map[string]*Counter{}}
}

// Histogram returns the latency histogram for a pipeline operation,
// creating it on first use.
func (r *Registry) Histogram(op string) *Histogram {
	r.mu.RLock()
	h := r.hists[op]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[op]; h == nil {
		h = &Histogram{op: op}
		r.hists[op] = h
	}
	return h
}

// Counter returns the named event counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Snapshot is a point-in-time copy of a registry.
type Snapshot struct {
	Counters   map[string]int64 `json:"counters"`
	Histograms []HistSnapshot   `json:"histograms"`
}

// Snapshot copies the registry's current state; histograms are ordered by
// operation name, so rendering is deterministic.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	r.mu.RUnlock()

	snap := Snapshot{Counters: make(map[string]int64, len(counters))}
	for name, c := range counters {
		snap.Counters[name] = c.Load()
	}
	for _, h := range hists {
		snap.Histograms = append(snap.Histograms, h.Snapshot())
	}
	sort.Slice(snap.Histograms, func(i, j int) bool {
		return snap.Histograms[i].Op < snap.Histograms[j].Op
	})
	return snap
}

// WriteJSON renders the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Prometheus metric family names.
const (
	promHistName    = "feam_pipeline_duration_seconds"
	promCounterName = "feam_events_total"
)

// promFloat renders a seconds value the way Prometheus clients do.
func promFloat(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// WritePrometheus renders the registry snapshot in Prometheus text
// exposition format (version 0.0.4): one histogram family keyed by the
// `op` label plus one counter family keyed by the `event` label.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	if len(snap.Histograms) > 0 {
		fmt.Fprintf(w, "# HELP %s Wall-clock latency of FEAM pipeline operations.\n", promHistName)
		fmt.Fprintf(w, "# TYPE %s histogram\n", promHistName)
		for _, h := range snap.Histograms {
			// Expand the sparse snapshot back into cumulative buckets.
			raw := make(map[time.Duration]uint64, len(h.Buckets))
			for _, b := range h.Buckets {
				raw[b.LE] = b.Count
			}
			var cum uint64
			for i := 0; i < NumBuckets; i++ {
				cum += raw[BucketBound(i)]
				fmt.Fprintf(w, "%s_bucket{op=%q,le=%q} %d\n",
					promHistName, h.Op, promFloat(BucketBound(i)), cum)
			}
			cum += raw[-1]
			fmt.Fprintf(w, "%s_bucket{op=%q,le=\"+Inf\"} %d\n", promHistName, h.Op, cum)
			fmt.Fprintf(w, "%s_sum{op=%q} %s\n", promHistName, h.Op, promFloat(h.Sum))
			fmt.Fprintf(w, "%s_count{op=%q} %d\n", promHistName, h.Op, h.Count)
		}
	}
	if len(snap.Counters) > 0 {
		names := make([]string, 0, len(snap.Counters))
		for name := range snap.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "# HELP %s FEAM engine event counts.\n", promCounterName)
		fmt.Fprintf(w, "# TYPE %s counter\n", promCounterName)
		for _, name := range names {
			fmt.Fprintf(w, "%s{event=%q} %d\n", promCounterName, name, snap.Counters[name])
		}
	}
	return nil
}

// RegistrySink derives metrics from the span stream: every completed span
// feeds its operation's latency histogram, and the canonical pipeline
// attrs/events feed the engine counters (evaluations, cache hits, probe
// runs, retries, staging outcomes). Attaching it to a tracer is the only
// wiring the engine needs — spans carry everything.
type RegistrySink struct{ reg *Registry }

// NewRegistrySink returns a sink recording into reg.
func NewRegistrySink(reg *Registry) *RegistrySink { return &RegistrySink{reg: reg} }

// SpanStarted implements Sink.
func (rs *RegistrySink) SpanStarted(*Span) {}

// SpanEnded implements Sink.
func (rs *RegistrySink) SpanEnded(s *Span) {
	rs.reg.Histogram(s.Op).Observe(s.Duration)
	if s.Status == StatusError {
		rs.reg.Counter("errors_" + s.Op).Add(1)
	}
	switch s.Op {
	case OpEvaluate:
		rs.reg.Counter("evaluations").Add(1)
		if s.Attrs[AttrReady] == "true" {
			rs.reg.Counter("ready_predictions").Add(1)
		}
	case OpProbe:
		rs.reg.Counter("probe_runs").Add(1)
		if s.Attrs[AttrSuccess] != "true" {
			rs.reg.Counter("probe_failures").Add(1)
		}
	case OpStaging:
		if s.Attrs[AttrCommitted] == "true" {
			rs.reg.Counter("staging_commits").Add(1)
		} else {
			rs.reg.Counter("staging_rollbacks").Add(1)
		}
	}
}

// SpanEvent implements Sink.
func (rs *RegistrySink) SpanEvent(s *Span, e Event) {
	switch e.Name {
	case EvCache:
		suffix := "_misses"
		if e.Attrs[AttrHit] == "true" {
			suffix = "_hits"
		}
		rs.reg.Counter(e.Attrs[AttrComponent] + suffix).Add(1)
	case EvProbeRetry:
		rs.reg.Counter("probe_retries").Add(1)
		rs.observeBackoff(e)
	case EvStagingRetry:
		rs.reg.Counter("staging_retries").Add(1)
		rs.observeBackoff(e)
	}
}

func (rs *RegistrySink) observeBackoff(e Event) {
	ns, err := strconv.ParseInt(e.Attrs[AttrBackoffNS], 10, 64)
	if err != nil || ns < 0 {
		return
	}
	rs.reg.Histogram(OpRetrySleep).Observe(time.Duration(ns))
}
