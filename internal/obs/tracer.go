package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultCapacity is the ring-buffer size a zero-configured tracer keeps:
// large enough to hold a full testbed evaluation's recent history, small
// enough to be negligible memory. Exports that must not lose spans attach
// a streaming JSONLSink instead of relying on the ring.
const DefaultCapacity = 8192

// Sink observes span lifecycle. Implementations must be safe for
// concurrent notification (spans end on whichever goroutine did the work)
// and must not retain or mutate the span after the callback returns.
type Sink interface {
	SpanStarted(s *Span)
	SpanEnded(s *Span)
	SpanEvent(s *Span, e Event)
}

// Tracer creates spans and fans their lifecycle out to sinks, keeping the
// most recent completed spans in a fixed-size ring buffer. The zero-value
// Tracer is not usable; construct with NewTracer. A nil *Tracer is safe:
// Start returns a nil span whose methods no-op, so instrumented code never
// branches on tracing being enabled.
type Tracer struct {
	nextID atomic.Uint64
	now    func() time.Time

	mu     sync.Mutex
	ring   []*Span
	next   int
	filled bool
	total  uint64
	// sinks holds an immutable snapshot swapped wholesale on AddSink, so
	// the per-span fan-out (several notifications per traced operation)
	// reads it with one atomic load instead of taking a lock.
	sinks atomic.Pointer[[]Sink]
}

// NewTracer returns a tracer whose ring buffer holds up to capacity
// completed spans (DefaultCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{ring: make([]*Span, capacity), now: time.Now}
}

// AddSink registers a lifecycle observer.
func (t *Tracer) AddSink(s Sink) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var next []Sink
	if cur := t.sinks.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, s)
	t.sinks.Store(&next)
}

func (t *Tracer) snapshotSinks() []Sink {
	cur := t.sinks.Load()
	if cur == nil {
		return nil
	}
	return *cur
}

// SpanOpt configures a span at Start time (identity fields must be set
// before sinks see the span).
type SpanOpt func(*Span)

// WithParent links the span under parent (no-op for a nil parent).
func WithParent(parent *Span) SpanOpt {
	return func(s *Span) {
		if parent != nil {
			s.Parent = parent.ID
		}
	}
}

// WithSite sets the span's site coordinate.
func WithSite(site string) SpanOpt { return func(s *Span) { s.Site = site } }

// WithBinary sets the span's binary coordinate.
func WithBinary(binary string) SpanOpt { return func(s *Span) { s.Binary = binary } }

// WithDeterminant sets the span's determinant coordinate.
func WithDeterminant(d string) SpanOpt { return func(s *Span) { s.Determinant = d } }

// WithAttr sets one attribute.
func WithAttr(key, value string) SpanOpt { return func(s *Span) { s.SetAttr(key, value) } }

// Start opens a span for an operation and notifies sinks. The caller owns
// the span until End. Safe on a nil tracer (returns a nil, no-op span).
func (t *Tracer) Start(op string, opts ...SpanOpt) *Span {
	if t == nil {
		return nil
	}
	s := &Span{ID: t.nextID.Add(1), Op: op, Start: t.now(), tracer: t}
	for _, opt := range opts {
		opt(s)
	}
	for _, sink := range t.snapshotSinks() {
		sink.SpanStarted(s)
	}
	return s
}

func (t *Tracer) spanEvent(s *Span, e Event) {
	for _, sink := range t.snapshotSinks() {
		sink.SpanEvent(s, e)
	}
}

func (t *Tracer) finish(s *Span) {
	t.mu.Lock()
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	t.total++
	t.mu.Unlock()
	for _, sink := range t.snapshotSinks() {
		sink.SpanEnded(s)
	}
}

// Total returns the number of spans completed over the tracer's lifetime
// (including spans already evicted from the ring).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns copies of the completed spans still held in the ring
// buffer, oldest first.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var ordered []*Span
	if t.filled {
		ordered = append(ordered, t.ring[t.next:]...)
		ordered = append(ordered, t.ring[:t.next]...)
	} else {
		ordered = t.ring[:t.next]
	}
	out := make([]Span, len(ordered))
	for i, s := range ordered {
		out[i] = *s
	}
	return out
}

// WriteJSONL exports the ring buffer's spans as JSON Lines, oldest first.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Snapshot() {
		if err := enc.Encode(&s); err != nil {
			return err
		}
	}
	return nil
}

// JSONLSink streams every completed span to a writer as one JSON line —
// the lossless export path for long runs that outgrow the ring buffer.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLSink returns a sink streaming completed spans to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// SpanStarted implements Sink.
func (j *JSONLSink) SpanStarted(*Span) {}

// SpanEvent implements Sink.
func (j *JSONLSink) SpanEvent(*Span, Event) {}

// SpanEnded implements Sink.
func (j *JSONLSink) SpanEnded(s *Span) {
	j.mu.Lock()
	defer j.mu.Unlock()
	_ = j.enc.Encode(s)
}

// spanKey is the context key for the current parent span.
type spanKey struct{}

// ContextWithSpan returns a context carrying sp as the current parent
// span; nested pipeline operations link their spans under it.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the current parent span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}
