package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: bucket i covers (base·2^(i-1), base·2^i] with
// base = 1µs; bucket 0 covers (0, 1µs]. 28 finite buckets reach ~134s,
// beyond any single pipeline operation; slower samples land in the
// overflow (+Inf) bucket. Log bucketing gives constant relative error
// (≤2×) across nine orders of magnitude with a fixed, tiny footprint.
const (
	bucketBase = time.Microsecond
	// NumBuckets is the number of finite histogram buckets; the overflow
	// bucket is stored at index NumBuckets.
	NumBuckets = 28
)

// BucketBound returns the inclusive upper bound of finite bucket i.
func BucketBound(i int) time.Duration { return bucketBase << uint(i) }

// bucketIndex maps a duration to its bucket (NumBuckets = overflow).
func bucketIndex(d time.Duration) int {
	if d <= bucketBase {
		return 0
	}
	// Smallest idx with base·2^idx >= d. Since 2^idx is integral the
	// condition is 2^idx >= ceil(d/base), and bits.Len64(n-1) is the
	// smallest power-of-two exponent covering n.
	units := uint64((d + bucketBase - 1) / bucketBase)
	idx := bits.Len64(units - 1)
	if idx >= NumBuckets {
		return NumBuckets
	}
	return idx
}

// Histogram is a lock-free latency histogram. Recording is a couple of
// atomic adds plus a CAS loop for the maximum, so engine workers record
// without coordination; the zero value is NOT ready — histograms belong to
// a Registry, which names them by pipeline operation.
type Histogram struct {
	op     string
	counts [NumBuckets + 1]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// Op returns the pipeline operation this histogram measures.
func (h *Histogram) Op() string { return h.op }

// Observe records one sample. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistBucket is one non-empty bucket in a snapshot. LE is the inclusive
// upper bound; the overflow bucket carries LE = -1 (+Inf).
type HistBucket struct {
	LE    time.Duration `json:"le_ns"`
	Count uint64        `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram. Buckets holds raw
// (non-cumulative) counts for non-empty buckets only, in bound order.
type HistSnapshot struct {
	Op      string        `json:"op"`
	Count   uint64        `json:"count"`
	Sum     time.Duration `json:"sum_ns"`
	Max     time.Duration `json:"max_ns"`
	Buckets []HistBucket  `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's state. Concurrent recording may make
// the copy slightly torn (count vs. buckets drifting by in-flight
// samples); the drift is bounded by concurrency and irrelevant for
// monitoring.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Op:  h.op,
		Sum: time.Duration(h.sum.Load()),
		Max: time.Duration(h.max.Load()),
	}
	for i := 0; i <= NumBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		le := BucketBound(i)
		if i == NumBuckets {
			le = -1
		}
		s.Buckets = append(s.Buckets, HistBucket{LE: le, Count: c})
		s.Count += c
	}
	return s
}

// Mean returns the average sample duration (0 when empty).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the bound of the bucket containing the q-th sample. The overflow bucket
// and q=1 report the exact observed maximum.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return s.Max
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= target {
			if b.LE < 0 || b.LE > s.Max {
				return s.Max
			}
			return b.LE
		}
	}
	return s.Max
}
