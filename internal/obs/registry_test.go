package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with fixed contents so its renderings
// are byte-for-byte deterministic.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	ev := reg.Histogram(OpEvaluate)
	for _, d := range []time.Duration{
		800 * time.Nanosecond,
		5 * time.Microsecond,
		5 * time.Microsecond,
		120 * time.Microsecond,
		3 * time.Millisecond,
	} {
		ev.Observe(d)
	}
	pr := reg.Histogram(OpProbe)
	pr.Observe(40 * time.Millisecond)
	pr.Observe(2 * time.Second)
	reg.Histogram(OpRetrySleep).Observe(300 * time.Hour) // overflow bucket
	reg.Counter("evaluations").Add(5)
	reg.Counter("ready_predictions").Add(3)
	reg.Counter("probe_runs").Add(2)
	reg.Counter("bdc_hits").Add(4)
	reg.Counter("bdc_misses").Add(1)
	return reg
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.prom.golden", buf.Bytes())
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.json.golden", buf.Bytes())
	// And it must be valid JSON that decodes back into a snapshot.
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["evaluations"] != 5 || len(snap.Histograms) != 3 {
		t.Errorf("decoded snapshot = %+v", snap)
	}
}

// promLine matches one sample line of text exposition format 0.0.4.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf)$`)

// TestPrometheusOutputParses validates the exposition-format invariants a
// Prometheus scraper relies on: every line is a comment or a well-formed
// sample, histogram buckets are cumulative and non-decreasing, the +Inf
// bucket equals the _count series, and every histogram op appears once.
func TestPrometheusOutputParses(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	type hist struct {
		lastCum int64
		infSeen bool
		inf     int64
		count   int64
	}
	hists := map[string]*hist{}
	opOf := regexp.MustCompile(`op="([^"]*)"`)
	leOf := regexp.MustCompile(`le="([^"]*)"`)
	for i, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d not parseable: %q", i+1, line)
		}
		name, labels, value := m[1], m[2], m[3]
		opm := opOf.FindStringSubmatch(labels)
		switch name {
		case promHistName + "_bucket":
			if opm == nil {
				t.Fatalf("line %d: bucket without op label: %q", i+1, line)
			}
			h := hists[opm[1]]
			if h == nil {
				h = &hist{}
				hists[opm[1]] = h
			}
			v, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				t.Fatalf("line %d: bucket value %q: %v", i+1, value, err)
			}
			if v < h.lastCum {
				t.Errorf("op %s: bucket counts not cumulative (%d after %d)", opm[1], v, h.lastCum)
			}
			h.lastCum = v
			lem := leOf.FindStringSubmatch(labels)
			if lem == nil {
				t.Fatalf("line %d: bucket without le label: %q", i+1, line)
			}
			if lem[1] == "+Inf" {
				h.infSeen = true
				h.inf = v
			} else if _, err := strconv.ParseFloat(lem[1], 64); err != nil {
				t.Errorf("le=%q is not a float", lem[1])
			}
		case promHistName + "_sum":
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Errorf("sum value %q: %v", value, err)
			}
		case promHistName + "_count":
			h := hists[opm[1]]
			v, _ := strconv.ParseInt(value, 10, 64)
			h.count = v
		case promCounterName:
			if !strings.Contains(labels, `event="`) {
				t.Errorf("counter without event label: %q", line)
			}
		default:
			t.Errorf("unexpected metric name %q", name)
		}
	}
	if len(hists) != 3 {
		t.Fatalf("parsed %d histogram series, want 3", len(hists))
	}
	for op, h := range hists {
		if !h.infSeen {
			t.Errorf("op %s: no +Inf bucket", op)
		}
		if h.inf != h.count {
			t.Errorf("op %s: +Inf bucket %d != count %d", op, h.inf, h.count)
		}
	}
}

func TestRegistrySinkDerivesCountersAndHistograms(t *testing.T) {
	reg := NewRegistry()
	tr := newTestTracer(32)
	tr.AddSink(NewRegistrySink(reg))

	ev := tr.Start(OpEvaluate, WithBinary("cg"), WithSite("india"))
	ev.Event(EvCache, AttrComponent, "bdc", AttrKey, "cg", AttrHit, "true")
	ev.Event(EvCache, AttrComponent, "edc", AttrKey, "india", AttrHit, "false")
	probe := tr.Start(OpProbe, WithParent(ev), WithAttr(AttrStack, "s"), WithAttr(AttrSuccess, "x"))
	probe.SetAttr(AttrSuccess, "false")
	probe.End(nil)
	ev.Event(EvProbeRetry, AttrStack, "s", AttrAttempt, "1", AttrBackoffNS, "2000000")
	stg := tr.Start(OpStaging, WithParent(ev), WithAttr(AttrDir, "/d"), WithAttr(AttrLibs, "2"))
	stg.Event(EvStagingRetry, AttrPath, "/d/x", AttrAttempt, "1", AttrBackoffNS, "1000000")
	stg.SetAttr(AttrCommitted, "false")
	stg.End(fmt.Errorf("disk fault"))
	ev.SetAttr(AttrReady, "true")
	ev.End(nil)

	want := map[string]int64{
		"evaluations":       1,
		"ready_predictions": 1,
		"probe_runs":        1,
		"probe_failures":    1,
		"probe_retries":     1,
		"staging_retries":   1,
		"staging_rollbacks": 1,
		"bdc_hits":          1,
		"edc_misses":        1,
		"errors_staging":    1,
	}
	for name, v := range want {
		if got := reg.Counter(name).Load(); got != v {
			t.Errorf("counter %s = %d, want %d", name, got, v)
		}
	}
	for _, zero := range []string{"staging_commits", "bdc_misses", "edc_hits"} {
		if got := reg.Counter(zero).Load(); got != 0 {
			t.Errorf("counter %s = %d, want 0", zero, got)
		}
	}
	for op, n := range map[string]uint64{OpEvaluate: 1, OpProbe: 1, OpStaging: 1, OpRetrySleep: 2} {
		if got := reg.Histogram(op).Count(); got != n {
			t.Errorf("histogram %s count = %d, want %d", op, got, n)
		}
	}
	// The retry-sleep histogram records the nominal backoffs (2ms + 1ms).
	if got := reg.Histogram(OpRetrySleep).Snapshot().Sum; got != 3*time.Millisecond {
		t.Errorf("retry sleep sum = %v, want 3ms", got)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				reg.Histogram(OpEvaluate).Observe(time.Duration(i) * time.Microsecond)
				reg.Counter("evaluations").Add(1)
				if i%100 == 0 {
					_ = reg.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := reg.Counter("evaluations").Load(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
	if got := reg.Histogram(OpEvaluate).Count(); got != 4000 {
		t.Fatalf("histogram count = %d, want 4000", got)
	}
}

func TestDebugHandlerEndpoints(t *testing.T) {
	reg := goldenRegistry()
	tr := newTestTracer(8)
	tr.Start(OpDiscover, WithSite("india")).End(nil)
	h := DebugHandler(reg, tr)

	get := func(path string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		return rr
	}
	if rr := get("/metrics"); rr.Code != 200 || !strings.Contains(rr.Body.String(), promHistName) {
		t.Errorf("/metrics: code %d body %q", rr.Code, rr.Body.String())
	}
	if rr := get("/metrics.json"); rr.Code != 200 || !strings.Contains(rr.Body.String(), `"counters"`) {
		t.Errorf("/metrics.json: code %d", rr.Code)
	}
	if rr := get("/trace"); rr.Code != 200 || !strings.Contains(rr.Body.String(), `"op":"discover"`) {
		t.Errorf("/trace: code %d body %q", rr.Code, rr.Body.String())
	}
	if rr := get("/debug/vars"); rr.Code != 200 {
		t.Errorf("/debug/vars: code %d", rr.Code)
	}
	if rr := get("/debug/pprof/"); rr.Code != 200 {
		t.Errorf("/debug/pprof/: code %d", rr.Code)
	}
}
