package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// testClock is a deterministic time source: every call advances by step.
type testClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func newTestClock(step time.Duration) *testClock {
	return &testClock{now: time.Unix(1700000000, 0), step: step}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

func newTestTracer(capacity int) *Tracer {
	t := NewTracer(capacity)
	t.now = newTestClock(time.Millisecond).Now
	return t
}

func TestSpanLifecycle(t *testing.T) {
	tr := newTestTracer(16)
	parent := tr.Start(OpEvaluate, WithBinary("cg.A.4"), WithSite("india"))
	child := tr.Start(OpDeterminant, WithParent(parent), WithDeterminant("MPI stack"))
	child.Event(EvProbeRetry, AttrStack, "openmpi-1.4.3-gnu", AttrAttempt, "1")
	child.End(nil)
	parent.SetAttr(AttrReady, "true")
	parent.End(nil)

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("snapshot has %d spans, want 2", len(spans))
	}
	// Ring order is completion order: child ended first.
	c, p := spans[0], spans[1]
	if c.Op != OpDeterminant || p.Op != OpEvaluate {
		t.Fatalf("ops = %s, %s", c.Op, p.Op)
	}
	if c.Parent != p.ID {
		t.Errorf("child.Parent = %d, want parent ID %d", c.Parent, p.ID)
	}
	if c.Determinant != "MPI stack" {
		t.Errorf("Determinant = %q", c.Determinant)
	}
	if c.Status != StatusOK || p.Status != StatusOK {
		t.Errorf("statuses = %q, %q", c.Status, p.Status)
	}
	if c.Duration <= 0 {
		t.Errorf("child duration = %v, want > 0", c.Duration)
	}
	if len(c.Events) != 1 || c.Events[0].Name != EvProbeRetry {
		t.Fatalf("child events = %+v", c.Events)
	}
	if got := c.Events[0].Attrs[AttrStack]; got != "openmpi-1.4.3-gnu" {
		t.Errorf("event stack attr = %q", got)
	}
	if p.Attrs[AttrReady] != "true" {
		t.Errorf("parent ready attr = %q", p.Attrs[AttrReady])
	}
	if tr.Total() != 2 {
		t.Errorf("Total = %d, want 2", tr.Total())
	}
}

func TestSpanErrorStatus(t *testing.T) {
	tr := newTestTracer(4)
	sp := tr.Start(OpDiscover, WithSite("edge"))
	cause := fmt.Errorf("uname unreadable")
	sp.End(cause)
	got := tr.Snapshot()[0]
	if got.Status != StatusError {
		t.Errorf("status = %q", got.Status)
	}
	if got.ErrMsg != "uname unreadable" {
		t.Errorf("err = %q", got.ErrMsg)
	}
	if sp.Cause() != cause {
		t.Errorf("Cause() = %v", sp.Cause())
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(OpProbe, WithSite("x"))
	if sp != nil {
		t.Fatalf("nil tracer Start returned %v", sp)
	}
	// All nil-span methods must be safe.
	sp.SetAttr("k", "v")
	sp.Event(EvCache, AttrHit, "true")
	sp.End(nil)
	if sp.Cause() != nil {
		t.Errorf("nil span Cause = %v", sp.Cause())
	}
	if tr.Total() != 0 || tr.Snapshot() != nil {
		t.Error("nil tracer has state")
	}
}

func TestRingBufferEvictsOldestFirst(t *testing.T) {
	tr := newTestTracer(4)
	for i := 0; i < 10; i++ {
		sp := tr.Start(OpProbe, WithAttr("i", fmt.Sprint(i)))
		sp.End(nil)
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	for j, sp := range spans {
		if want := fmt.Sprint(6 + j); sp.Attrs["i"] != want {
			t.Errorf("span %d: i = %q, want %q (oldest-first order)", j, sp.Attrs["i"], want)
		}
	}
	if tr.Total() != 10 {
		t.Errorf("Total = %d, want 10", tr.Total())
	}
}

func TestWriteJSONLRoundTrip(t *testing.T) {
	tr := newTestTracer(8)
	sp := tr.Start(OpStaging, WithSite("fir"), WithAttr(AttrDir, "/tmp/stage"))
	sp.Event(EvStagingRetry, AttrPath, "/tmp/stage/libm.so", AttrAttempt, "1", AttrBackoffNS, "1000000")
	sp.SetAttr(AttrCommitted, "true")
	sp.End(nil)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var got Span
		if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if got.Op != OpStaging || got.Site != "fir" || got.Attrs[AttrCommitted] != "true" {
			t.Errorf("decoded span = %+v", got)
		}
		if len(got.Events) != 1 || got.Events[0].Attrs[AttrBackoffNS] != "1000000" {
			t.Errorf("decoded events = %+v", got.Events)
		}
		n++
	}
	if n != 1 {
		t.Fatalf("decoded %d lines, want 1", n)
	}
}

func TestJSONLSinkStreamsEverySpan(t *testing.T) {
	var buf bytes.Buffer
	tr := newTestTracer(2) // smaller than the span count: ring loses, sink must not
	tr.AddSink(NewJSONLSink(&buf))
	for i := 0; i < 7; i++ {
		tr.Start(OpDescribe, WithBinary(fmt.Sprintf("bin%d", i))).End(nil)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 7 {
		t.Fatalf("sink wrote %d lines, want 7 (ring kept %d)", lines, len(tr.Snapshot()))
	}
}

func TestContextSpanPropagation(t *testing.T) {
	tr := newTestTracer(4)
	sp := tr.Start(OpAssess, WithSite("india"))
	ctx := ContextWithSpan(context.Background(), sp)
	if got := SpanFromContext(ctx); got != sp {
		t.Fatalf("SpanFromContext = %v", got)
	}
	if got := SpanFromContext(context.Background()); got != nil {
		t.Fatalf("empty context span = %v", got)
	}
	// Nil span leaves the context untouched.
	if ctx2 := ContextWithSpan(ctx, nil); SpanFromContext(ctx2) != sp {
		t.Error("nil span overwrote the context parent")
	}
	sp.End(nil)
}

// recordingSink captures lifecycle callbacks in order.
type recordingSink struct {
	mu     sync.Mutex
	events []string
}

func (r *recordingSink) add(s string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, s)
}

func (r *recordingSink) SpanStarted(sp *Span)        { r.add("start:" + sp.Op) }
func (r *recordingSink) SpanEnded(sp *Span)          { r.add("end:" + sp.Op) }
func (r *recordingSink) SpanEvent(sp *Span, e Event) { r.add("event:" + e.Name) }

func TestSinkNotificationOrder(t *testing.T) {
	tr := newTestTracer(4)
	rec := &recordingSink{}
	tr.AddSink(rec)
	sp := tr.Start(OpEvaluate)
	sp.Event(EvCache, AttrComponent, "bdc", AttrHit, "false")
	sp.End(nil)
	want := []string{"start:evaluate", "event:cache", "end:evaluate"}
	if fmt.Sprint(rec.events) != fmt.Sprint(want) {
		t.Fatalf("sink saw %v, want %v", rec.events, want)
	}
}

func TestConcurrentSpansAndSnapshots(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.Start(OpProbe, WithSite(fmt.Sprintf("site%d", g)))
				sp.Event(EvProbeRetry, AttrAttempt, "1")
				sp.End(nil)
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		_ = tr.Snapshot()
	}
	wg.Wait()
	if tr.Total() != 400 {
		t.Fatalf("Total = %d, want 400", tr.Total())
	}
}
