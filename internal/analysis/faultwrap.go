package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// FaultWrap enforces the error-taxonomy invariant introduced by PRs 2–3:
// functions in the prediction pipeline (internal/feam, internal/fault)
// must not return bare fmt.Errorf/errors.New errors. A bare error carries
// neither the transient/permanent fault classification nor one of the
// pipeline sentinels (ErrNoEnvironment, ErrSiteUnavailable,
// ErrProbeFailed, ErrBadBinary, ErrBadBundle, ErrBadConfig), so callers
// fall back to string matching and fault.IsTransient misclassifies the
// failure as permanent. Errors must wrap a sentinel or an underlying
// cause with %w; genuinely standalone errors carry a
// //lint:ignore faultwrap <justification> annotation.
var FaultWrap = &Analyzer{
	Name: "faultwrap",
	Doc: "pipeline functions must not return bare fmt.Errorf/errors.New errors; " +
		"wrap a sentinel or the cause with %w so the fault taxonomy survives",
	Run: runFaultWrap,
}

// faultWrapPackages are the package-path fragments the invariant covers:
// the prediction pipeline and the fault taxonomy itself (plus the
// analyzer's own golden testdata package).
func faultWrapApplies(pkgPath string) bool {
	return strings.Contains(pkgPath, "internal/feam") ||
		strings.Contains(pkgPath, "internal/fault") ||
		strings.Contains(pkgPath, "faultwrap")
}

func runFaultWrap(pass *Pass) error {
	if !faultWrapApplies(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		fmtNames := importNames(f, "fmt")
		errNames := importNames(f, "errors")
		ast.Inspect(f, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				call, ok := res.(*ast.CallExpr)
				if !ok {
					continue
				}
				if _, ok := isPkgCall(call, errNames, "New"); ok {
					pass.Reportf(call.Pos(), "returning a bare errors.New error bypasses the fault taxonomy; wrap a sentinel or fault with fmt.Errorf(\"%%w: ...\", ...)")
					continue
				}
				if _, ok := isPkgCall(call, fmtNames, "Errorf"); !ok {
					continue
				}
				if len(call.Args) == 0 {
					continue
				}
				format, ok := stringLit(call.Args[0])
				if !ok || strings.Contains(format, "%w") {
					continue // wraps something (or dynamic format: give the benefit of the doubt)
				}
				if formatsError(format, call.Args[1:]) {
					pass.Reportf(call.Pos(), "fmt.Errorf formats its cause with %%v, swallowing the fault taxonomy; use %%w so errors.Is/As and fault.IsTransient keep working")
				} else {
					pass.Reportf(call.Pos(), "returning a bare fmt.Errorf error bypasses the fault taxonomy; wrap a pipeline sentinel with %%w (or annotate //lint:ignore faultwrap <why>)")
				}
			}
			return true
		})
	}
	return nil
}

// stringLit extracts a string literal's value.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	// Trim the quotes; escapes don't matter for %-verb detection.
	return lit.Value, true
}

// formatsError guesses whether one of the format arguments is an error
// value being flattened through %v/%s: an identifier or selector named
// err/Err/error-ish.
func formatsError(format string, args []ast.Expr) bool {
	if !strings.Contains(format, "%v") && !strings.Contains(format, "%s") {
		return false
	}
	for _, a := range args {
		name := ""
		switch x := a.(type) {
		case *ast.Ident:
			name = x.Name
		case *ast.SelectorExpr:
			name = x.Sel.Name
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Error" {
				return true // err.Error() stringifies the cause
			}
		}
		lower := strings.ToLower(name)
		if lower == "err" || strings.HasSuffix(lower, "err") || strings.HasPrefix(lower, "err") {
			return true
		}
	}
	return false
}
