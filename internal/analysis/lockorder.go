package analysis

import (
	"go/ast"
	"strings"
)

// LockOrder enforces the locking discipline documented on Engine (PR 1)
// and exercised by RankSitesParallel: the engine's registry mutex (e.mu)
// is a leaf lock guarding map lookups only — holding it across probe
// runs, staging operations, retry loops, or another lock acquisition
// serializes the whole survey fan-out (or deadlocks it); and per-site
// locks obtained from SiteLock are unordered, so acquiring a second site
// lock while holding one can deadlock two concurrent surveys that visit
// the same pair of sites in opposite orders.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "no probe/exec/staging/retry call and no second lock acquisition while " +
		"holding the engine mutex; never nest per-site locks from SiteLock",
	Run: runLockOrder,
}

// lockBlockers are direct calls that block for simulated work: probe
// executions, staging writes, retry/backoff loops, and whole-pipeline
// reentries. Holding the engine's leaf mutex across any of them is a
// bug even when it happens to pass the race detector.
var lockBlockers = map[string]bool{
	"RunProgram": true, "RunProbe": true, "runProbe": true,
	"OpenBatch": true, "BeginProbeBatch": true,
	"CompileHello": true, "CompileSerialHello": true,
	"Retry": true, "RetryWithHook": true, "Sleep": true,
	"Evaluate": true, "Predict": true, "Discover": true, "Describe": true,
	"RankSites": true, "RankSitesParallel": true, "assessSite": true,
	"resolveMissing": true, "stagePlan": true, "stageOne": true,
	"commitStage": true, "retryFSOp": true,
	// PR 6 layering: real survey/description work and the engine's
	// store-backed rehydration helpers do filesystem I/O, so none of them
	// may run under a registry shard lock or the store's vfs lock.
	"discoverSite": true, "describeBytes": true,
	"loadSurvey": true, "persistSurvey": true,
	"loadDescription": true, "persistDescription": true,
	"SaveBundle": true, "LoadBundle": true,
}

type heldLock struct {
	key  string // source text of the locked expression
	site bool   // true when the lock came from Engine.SiteLock
}

func runLockOrder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fb := range funcBodies(f) {
			scanLockRegions(pass, fb.body.List, collectSiteLockVars(fb.body), nil)
		}
	}
	return nil
}

// collectSiteLockVars records local variables assigned from a SiteLock
// call: v := e.SiteLock(name).
func collectSiteLockVars(body *ast.BlockStmt) map[string]bool {
	vars := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "SiteLock" {
			vars[id.Name] = true
		}
		return true
	})
	return vars
}

// lockCallTarget matches <expr>.Lock() / <expr>.Unlock() and returns the
// receiver expression, whether it is a SiteLock acquisition, and which of
// Lock/Unlock it is.
func lockCallTarget(stmt ast.Stmt, siteVars map[string]bool) (key string, site bool, op string) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false, ""
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", false, ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock" && sel.Sel.Name != "RLock" && sel.Sel.Name != "RUnlock") {
		return "", false, ""
	}
	key = exprText(sel.X)
	op = "Lock"
	if strings.Contains(sel.Sel.Name, "Unlock") {
		op = "Unlock"
	}
	// Direct e.SiteLock(x).Lock() or a variable previously assigned from
	// SiteLock.
	if strings.Contains(key, "SiteLock") {
		return key, true, op
	}
	if id, ok := sel.X.(*ast.Ident); ok && siteVars[id.Name] {
		return key, true, op
	}
	return key, false, op
}

// isMutexKey recognizes the engine-registry-style leaf mutex: a bare "mu"
// or a selector ending in ".mu".
func isMutexKey(key string) bool {
	return key == "mu" || strings.HasSuffix(key, ".mu")
}

// scanLockRegions walks one statement list tracking which locks are held
// at the top level of the list, flagging blocking calls and nested lock
// acquisitions inside held regions. Nested blocks are scanned with the
// currently held set (a branch cannot release a top-level defer-held
// lock); deferred unlocks hold to the end of the function.
func scanLockRegions(pass *Pass, stmts []ast.Stmt, siteVars map[string]bool, held []heldLock) {
	holding := func() *heldLock {
		for i := range held {
			if isMutexKey(held[i].key) {
				return &held[i]
			}
		}
		return nil
	}
	holdingSite := func() *heldLock {
		for i := range held {
			if held[i].site {
				return &held[i]
			}
		}
		return nil
	}
	release := func(key string) {
		for i := range held {
			if held[i].key == key {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}

	for _, stmt := range stmts {
		// Deferred unlocks don't release within this scan; a defer of
		// Unlock right after Lock is the canonical whole-function hold.
		if d, ok := stmt.(*ast.DeferStmt); ok {
			if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok && strings.Contains(sel.Sel.Name, "Unlock") {
				continue
			}
		}
		if key, site, op := lockCallTarget(stmt, siteVars); op != "" {
			if op == "Unlock" {
				release(key)
				continue
			}
			if site {
				if prior := holdingSite(); prior != nil && prior.key != key {
					pass.Reportf(stmt.Pos(), "acquiring site lock %s while holding site lock %s: per-site locks are unordered and this can deadlock concurrent surveys", key, prior.key)
				}
			}
			if prior := holding(); prior != nil && prior.key != key {
				pass.Reportf(stmt.Pos(), "acquiring %s while holding the leaf mutex %s: the engine mutex guards map lookups only", key, prior.key)
			}
			held = append(held, heldLock{key: key, site: site})
			continue
		}
		if mu := holding(); mu != nil {
			flagBlockingCalls(pass, stmt, mu.key)
		}
		for _, nested := range nestedStmtLists(stmt) {
			scanLockRegions(pass, nested, siteVars, append([]heldLock(nil), held...))
		}
	}
}

// flagBlockingCalls reports blocking pipeline calls made directly in stmt
// (not inside nested blocks or function literals, which are scanned with
// their own held-set copies or deferred to runtime).
func flagBlockingCalls(pass *Pass, stmt ast.Stmt, muKey string) {
	// Only inspect the statement's own expressions, not nested statement
	// lists (those are handled by the recursive region scan).
	if len(nestedStmtLists(stmt)) > 0 {
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if lockBlockers[name] {
			pass.Reportf(call.Pos(), "%s while holding %s: probe/staging/retry work must not run under the engine's leaf mutex — snapshot state, unlock, then call", name, muKey)
		}
		return true
	})
}
