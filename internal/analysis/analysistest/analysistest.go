// Package analysistest runs an analyzer over golden packages under a
// testdata/src tree and checks its diagnostics against // want
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Each expectation is a comment on the line the diagnostic must land on:
//
//	bad() // want `regexp matching the message`
//
// Multiple want clauses on one line each demand a distinct diagnostic.
// Lines without a want comment must produce no diagnostics, and every
// want must be matched — both extra and missing findings fail the test.
// //lint:ignore suppression is applied before matching, so a seeded
// violation annotated with a justification needs no want clause: the
// harness verifies the suppression mechanism itself.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"feam/internal/analysis"
)

// wantRe matches one expectation clause: want `...` or want "...".
var wantRe = regexp.MustCompile("want\\s+(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// Run executes a over each named package under dir/src and reports
// mismatches through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runOne(t, filepath.Join(dir, "src", pkg), pkg, a)
	}
}

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

func runOne(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	//lint:ignore vfsonly the golden harness reads testdata off the host
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	name := ""
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: parse %s: %v", a.Name, e.Name(), err)
		}
		files = append(files, f)
		name = f.Name.Name
	}
	if len(files) == 0 {
		t.Fatalf("%s: no Go files in %s", a.Name, dir)
	}

	// Collect expectations per file:line.
	wants := map[string]map[int][]*expectation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					lit := m[1]
					pat := lit[1 : len(lit)-1]
					if lit[0] == '"' {
						pat = strings.ReplaceAll(pat, `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", a.Name, pat, err)
					}
					pos := fset.Position(c.Pos())
					if wants[pos.Filename] == nil {
						wants[pos.Filename] = map[int][]*expectation{}
					}
					wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line],
						&expectation{re: re, raw: pat})
				}
			}
		}
	}

	pkg := &analysis.Package{Path: pkgPath, Name: name, Dir: dir, Fset: fset, Files: files}
	diags, err := analysis.RunPackage(a, pkg)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	for _, d := range diags {
		matched := false
		for _, exp := range wants[d.Pos.Filename][d.Pos.Line] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
		}
	}
	for file, byLine := range wants {
		for line, exps := range byLine {
			for _, exp := range exps {
				if !exp.matched {
					t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none",
						a.Name, file, line, exp.raw)
				}
			}
		}
	}
}
