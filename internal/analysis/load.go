package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed package ready for analysis.
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Name is the package name.
	Name string
	// Dir is the package's directory on disk.
	Dir string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files holds the parsed non-test files.
	Files []*ast.File
}

// FileNames returns the on-disk names of the files parsed into the
// package.
func (p *Package) FileNames() []string {
	out := make([]string, 0, len(p.Files))
	for _, f := range p.Files {
		out = append(out, p.Fset.Position(f.Pos()).Filename)
	}
	return out
}

// ModulePath reads the module path from root/go.mod ("feam" for this
// repository).
func ModulePath(root string) (string, error) {
	//lint:ignore vfsonly the lint driver reads real source files off the host
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module clause in %s/go.mod", root)
}

// Load parses the packages under root selected by patterns. Patterns
// follow the go tool's shape: "./..." walks everything, "./x/..." walks a
// subtree, "./x/y" names one directory. Directories named testdata, vendor
// or starting with "." are skipped, as are _test.go files: the analyzers
// encode production-code invariants, and tests legitimately construct bare
// errors, fake spans, and direct filesystem fixtures.
func Load(root string, patterns []string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		if pat == "." || pat == "" {
			pat = root
		} else {
			pat = filepath.Join(root, strings.TrimPrefix(pat, "./"))
		}
		if !recursive {
			dirs[pat] = true
			continue
		}
		err := filepath.WalkDir(pat, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != pat && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs[p] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	module, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	for _, dir := range sorted {
		pkg, err := loadDir(dir, root, module)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// loadDir parses one directory's non-test files; nil when the directory
// holds no Go package.
func loadDir(dir, root, module string) (*Package, error) {
	//lint:ignore vfsonly the lint driver reads real source files off the host
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	name := ""
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		name = f.Name.Name
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := module
	if rel != "." {
		path = module + "/" + filepath.ToSlash(rel)
	}
	return &Package{Path: path, Name: name, Dir: dir, Fset: fset, Files: files}, nil
}

// RunPackage executes one analyzer over one package and returns its
// diagnostics after //lint:ignore suppression, sorted by position.
func RunPackage(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		PkgPath:  pkg.Path,
		PkgName:  pkg.Name,
		report:   func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
	}
	diags = suppress(diags, pkg)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// Run executes every analyzer over every package and returns the combined
// diagnostics.
func Run(root string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(root, patterns)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := RunPackage(a, pkg)
			if err != nil {
				return nil, err
			}
			all = append(all, diags...)
		}
	}
	return all, nil
}

// suppress drops diagnostics annotated away with
//
//	//lint:ignore <analyzer> <justification>
//
// placed either on the flagged line or on the line immediately above it.
// The justification is mandatory: a bare //lint:ignore suppresses nothing.
func suppress(diags []Diagnostic, pkg *Package) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	// ignored[file][line] -> set of analyzer names suppressed at that line.
	ignored := map[string]map[int]map[string]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // no justification: not a valid suppression
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := ignored[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					ignored[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = map[string]bool{}
					}
					byLine[line][fields[0]] = true
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if ignored[d.Pos.Filename][d.Pos.Line][d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
