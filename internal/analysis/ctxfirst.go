package analysis

import (
	"go/ast"
	"strings"
)

// CtxFirst enforces the context-plumbing invariant introduced by PR 1:
// pipeline entry points take context.Context as their first parameter,
// and a function that already receives a context must propagate it —
// manufacturing context.Background()/TODO() mid-pipeline, or feeding a
// non-context first argument to fault.Retry/RetryWithHook/Sleep, detaches
// the call from cancellation and from the span parent carried in the
// context.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc: "context.Context must be the first parameter, and functions holding a ctx " +
		"must pass it on instead of minting context.Background()/TODO()",
	Run: runCtxFirst,
}

func runCtxFirst(pass *Pass) error {
	for _, f := range pass.Files {
		ctxNames := importNames(f, "context")
		faultNames := importNames(f, "internal/fault", "fault")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			ctxParam := checkCtxPosition(pass, fd.Type, ctxNames)
			if fd.Body == nil {
				continue
			}
			if ctxParam != "" {
				checkCtxPropagation(pass, fd.Body, ctxParam, ctxNames, faultNames)
			}
			// Retry helpers demand a context first even in functions that
			// carry theirs inside a struct (EvalContext.Context).
			checkRetryFirstArg(pass, fd.Body, faultNames)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkCtxPosition(pass, lit.Type, ctxNames)
			}
			return true
		})
	}
	return nil
}

// checkCtxPosition reports a context.Context parameter that is not first
// and returns the name of the context parameter, if any.
func checkCtxPosition(pass *Pass, ft *ast.FuncType, ctxNames map[string]bool) string {
	if ft.Params == nil {
		return ""
	}
	pos := 0
	ctxName := ""
	for _, field := range ft.Params.List {
		isCtx := isContextType(field.Type, ctxNames)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtx {
			if len(field.Names) > 0 {
				ctxName = field.Names[0].Name
			}
			if pos != 0 {
				pass.Reportf(field.Type.Pos(), "context.Context must be the first parameter so call sites read ctx-first like the rest of the pipeline")
			}
		}
		pos += n
	}
	return ctxName
}

// isContextType recognizes the context.Context selector (alias-aware).
func isContextType(t ast.Expr, ctxNames map[string]bool) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && ctxNames[id.Name]
}

// checkCtxPropagation flags context.Background()/context.TODO() calls in a
// function that already has a ctx parameter.
func checkCtxPropagation(pass *Pass, body *ast.BlockStmt, ctxParam string, ctxNames, faultNames map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := isPkgCall(call, ctxNames, "Background", "TODO"); ok {
			pass.Reportf(call.Pos(), "this function already receives %s; context.%s() detaches the call from cancellation and span parentage — pass %s (or a context derived from it)", ctxParam, fn, ctxParam)
		}
		return true
	})
}

// checkRetryFirstArg flags fault.Retry/RetryWithHook/Sleep calls whose
// first argument is not recognizably a propagated context.
func checkRetryFirstArg(pass *Pass, body *ast.BlockStmt, faultNames map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := isPkgCall(call, faultNames, "Retry", "RetryWithHook", "Sleep")
		if !ok || len(call.Args) == 0 {
			return true
		}
		argText := exprText(call.Args[0])
		lower := strings.ToLower(argText)
		if strings.Contains(lower, "ctx") || strings.Contains(argText, "Context") {
			return true
		}
		pass.Reportf(call.Args[0].Pos(), "fault.%s must receive the caller's context as its first argument (got %s); backoff sleeps are uncancellable otherwise", fn, argText)
		return true
	})
}
