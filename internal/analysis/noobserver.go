package analysis

import (
	"go/ast"
)

// NoObserver keeps the deleted legacy Observer path deleted. PR 3 adapted
// the pre-tracing Observer interface onto the span stream as a shim; PR 9
// removed the shim entirely — engine activity is observed through
// WithTracer/WithMetrics (span sinks and the metrics registry). Any
// reappearance of the old entry points is a regression, not a feature:
// they duplicate the span stream under a second vocabulary and split the
// event counts operators rely on.
var NoObserver = &Analyzer{
	Name: "noobserver",
	Doc: "the legacy Observer path (WithObserver/AddObserver/NewCountersObserver/" +
		"NopObserver) was removed in favor of WithTracer/WithMetrics span sinks; " +
		"do not reintroduce it",
	Run: runNoObserver,
}

// observerNames are the removed entry points, as both call targets and
// declarations.
var observerNames = map[string]bool{
	"WithObserver": true, "AddObserver": true,
	"NewCountersObserver": true, "NopObserver": true,
}

func runNoObserver(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fb := range funcBodies(f) {
			if fb.decl.Name != nil && observerNames[fb.decl.Name.Name] {
				pass.Reportf(fb.decl.Pos(), "declaration of %s reintroduces the removed Observer path; observe the engine through WithTracer/WithMetrics instead", fb.decl.Name.Name)
			}
			ast.Inspect(fb.body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := ""
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					name = fun.Name
				case *ast.SelectorExpr:
					name = fun.Sel.Name
				}
				if observerNames[name] {
					pass.Reportf(call.Pos(), "call to %s uses the removed Observer path; attach a span sink via the tracer or read the metrics registry instead", name)
				}
				return true
			})
		}
	}
	return nil
}
