package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"feam/internal/analysis"
	"feam/internal/analysis/analysistest"
)

// Each analyzer must fire on its seeded golden violations and stay quiet
// on the legal patterns beside them (acceptance criterion: every analyzer
// demonstrably fires).

func TestSpanEndGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.SpanEnd, "spanend")
}

func TestFaultWrapGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.FaultWrap, "faultwrap")
}

func TestFaultWrapUnjustifiedIgnore(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.FaultWrap, "faultwrap/nojustify")
}

func TestVFSOnlyGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.VFSOnly, "vfsonly")
}

func TestCtxFirstGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.CtxFirst, "ctxfirst")
}

func TestLockOrderGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.LockOrder, "lockorder")
}

func TestNoObserverGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.NoObserver, "noobserver")
}

func TestViewAliasGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ViewAlias, "viewalias")
}

// TestRepoIsClean runs the full suite over the real tree — the same check
// `go run ./cmd/feam-lint ./...` performs in CI. Any finding here is a
// regression against an invariant the earlier PRs introduced.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(root, []string{"./..."}, analysis.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo violation: %s", d)
	}
}

// TestAnalyzersRegistered pins the suite composition: seven analyzers,
// the names feam-lint and //lint:ignore annotations refer to.
func TestAnalyzersRegistered(t *testing.T) {
	want := []string{"spanend", "faultwrap", "vfsonly", "ctxfirst", "lockorder", "noobserver", "viewalias"}
	got := analysis.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q lacks doc or run function", a.Name)
		}
	}
}

// TestLoadSkipsTestdataAndTests checks the loader's scope: _test.go files
// and testdata trees are outside the invariant surface.
func TestLoadSkipsTestdataAndTests(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, []string{"./internal/analysis/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if strings.Contains(p.Dir, "testdata") {
			t.Errorf("loader descended into testdata: %s", p.Dir)
		}
		for _, name := range p.FileNames() {
			if strings.HasSuffix(name, "_test.go") {
				t.Errorf("loader parsed a test file: %s", name)
			}
		}
	}
	if len(pkgs) < 2 {
		t.Fatalf("expected the analysis and analysistest packages, got %d", len(pkgs))
	}
}
