// Package analysis is a self-contained static-analysis framework plus the
// FEAM-specific analyzers that enforce this repository's invariants:
// spans are always ended, pipeline errors carry the fault taxonomy,
// filesystem access goes through internal/vfs, contexts come first and are
// propagated, and locks are not held across blocking pipeline work.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic, an analysistest-style golden harness) so the suite can
// be ported onto the real multichecker wholesale if the x/tools dependency
// ever becomes available. The container this repo builds in has no module
// proxy access and the tree has zero external dependencies, so the driver
// here is a small stdlib-only reimplementation: purely syntactic passes
// over go/ast with per-file import resolution instead of full type
// information. Every invariant the suite encodes is checkable at that
// level; see DESIGN.md §10 for the invariant-by-invariant rationale.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Analyzer is one named invariant check, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// annotations. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description printed by feam-lint -list.
	Doc string
	// Run executes the analyzer over one package. It reports findings via
	// pass.Reportf and returns an error only for analyzer-internal
	// failures (which abort the whole run, like a crashed vet pass).
	Run func(pass *Pass) error
}

// Pass carries one package's parsed syntax to an analyzer, mirroring
// golang.org/x/tools/go/analysis.Pass minus type information.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions for Files.
	Fset *token.FileSet
	// Files holds every parsed non-test file of the package.
	Files []*ast.File
	// PkgPath is the package's import path within the module (for
	// testdata packages, the bare package name).
	PkgPath string
	// PkgName is the package name from the package clauses.
	PkgName string

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported invariant violation.
type Diagnostic struct {
	// Analyzer names the check that fired.
	Analyzer string
	// Pos locates the violation.
	Pos token.Position
	// Message explains the violation and the expected fix.
	Message string
}

// String renders the conventional path:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzers returns the full FEAM suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{SpanEnd, FaultWrap, VFSOnly, CtxFirst, LockOrder, NoObserver, ViewAlias}
}

// ImportName returns the local name under which file imports path: the
// explicit alias when one is given, the path's last element otherwise, "."
// for dot imports, and "" when the file does not import path.
func ImportName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndexByte(p, '/'); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// importNames returns the local names under which file imports any of the
// given paths (suffix match on the path, so "feam/internal/obs" and a
// testdata copy both resolve). Dot imports contribute ".".
func importNames(f *ast.File, suffixes ...string) map[string]bool {
	names := map[string]bool{}
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		for _, s := range suffixes {
			if p != s && !strings.HasSuffix(p, "/"+s) {
				continue
			}
			name := ""
			if imp.Name != nil {
				name = imp.Name.Name
			} else if i := strings.LastIndexByte(p, '/'); i >= 0 {
				name = p[i+1:]
			} else {
				name = p
			}
			if name != "_" {
				names[name] = true
			}
		}
	}
	return names
}

// isPkgCall reports whether call is pkgName.funcName(...) for any pkgName
// in names and funcName in funcs.
func isPkgCall(call *ast.CallExpr, names map[string]bool, funcs ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !names[id.Name] {
		return "", false
	}
	for _, fn := range funcs {
		if sel.Sel.Name == fn {
			return fn, true
		}
	}
	return "", false
}

// exprText renders a terse source form of simple expressions (identifiers
// and selector chains), used to key lock variables and describe receivers.
// Unsupported forms render as "?".
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprText(x.Fun) + "()"
	case *ast.ParenExpr:
		return exprText(x.X)
	case *ast.StarExpr:
		return exprText(x.X)
	case *ast.IndexExpr:
		return exprText(x.X) + "[]"
	}
	return "?"
}

// funcBodies yields every function body in the file along with its
// declaration name (methods render as Recv.Name): top-level functions and
// methods only — function literals are analyzed in the context of their
// enclosing function by the individual analyzers.
func funcBodies(f *ast.File) []funcBody {
	var out []funcBody
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, funcBody{decl: fd, body: fd.Body})
	}
	return out
}

type funcBody struct {
	decl *ast.FuncDecl
	body *ast.BlockStmt
}
