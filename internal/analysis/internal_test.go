package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestImportName(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", `package x
import (
	"os"
	hostfs "path/filepath"
	. "strings"
	_ "sort"
	"feam/internal/obs"
)
`, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ path, want string }{
		{"os", "os"},
		{"path/filepath", "hostfs"},
		{"strings", "."},
		{"sort", ""},
		{"feam/internal/obs", "obs"},
		{"not/imported", ""},
	}
	for _, c := range cases {
		if got := ImportName(f, c.path); got != c.want {
			t.Errorf("ImportName(%q) = %q, want %q", c.path, got, c.want)
		}
	}
	names := importNames(f, "internal/obs", "obs")
	if !names["obs"] {
		t.Errorf("importNames missed the obs import: %v", names)
	}
}

func TestExprText(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", `package x
var v1 = a.b.c
var v2 = f()
var v3 = m[0]
var v4 = (*p)
`, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a.b.c", "f()", "m[]", "p"}
	i := 0
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) == 0 {
				continue
			}
			if got := exprText(vs.Values[0]); got != want[i] {
				t.Errorf("exprText #%d = %q, want %q", i, got, want[i])
			}
			i++
		}
	}
	if i != len(want) {
		t.Fatalf("covered %d cases, want %d", i, len(want))
	}
}

// TestSuppressSameLine covers the annotation-on-the-same-line form, which
// the golden packages don't exercise (they use the preceding-line form).
func TestSuppressSameLine(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", `package x
import "fmt"
func bad() error {
	return fmt.Errorf("feam: bare") //lint:ignore faultwrap same-line justification
}
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: "internal/feam", Name: "x", Fset: fset, Files: []*ast.File{f}}
	diags, err := RunPackage(FaultWrap, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("same-line suppression failed: %v", diags)
	}
}
