package analysis

import (
	"go/ast"
)

// ViewAlias guards the zero-allocation contract of elfimg.View: the
// []byte accessors (Interp, Soname, RPath, RunPath, NeededAt,
// VerNeedFileAt, VerDefAt) return sub-slices of the Parser's internal
// arena, valid only until the next Parse on the same Parser. Storing one
// in a struct field, embedding it in a composite literal, or returning it
// lets the alias outlive the parse that produced it — the next Parser
// reuse silently rewrites the bytes underneath it. Escaping values must
// be copied first (string(...) or append([]byte(nil), ...)); local reads
// within the parse's lifetime are the point of the walkers and stay
// legal. Justified aliasing (an arena guaranteed to outlive the holder)
// is annotated //lint:ignore viewalias <why>.
var ViewAlias = &Analyzer{
	Name: "viewalias",
	Doc: "elfimg.View []byte accessor results alias the Parser's arena and die on " +
		"Parser reuse; copy them (string or append) before storing them in struct " +
		"fields, composite literals, or returning them",
	Run: runViewAlias,
}

// viewAccessors are the View methods returning arena sub-slices.
var viewAccessors = map[string]bool{
	"Interp": true, "Soname": true, "RPath": true, "RunPath": true,
	"NeededAt": true, "VerNeedFileAt": true, "VerDefAt": true,
}

func runViewAlias(pass *Pass) error {
	for _, f := range pass.Files {
		// Only files that can see elfimg can hold a View; the package's
		// own internals manage the arena and are exempt.
		if len(importNames(f, "elfimg")) == 0 {
			continue
		}
		for _, fb := range funcBodies(f) {
			ast.Inspect(fb.body, func(n ast.Node) bool {
				switch stmt := n.(type) {
				case *ast.AssignStmt:
					checkViewAssign(pass, stmt)
				case *ast.CompositeLit:
					checkViewComposite(pass, stmt)
				case *ast.ReturnStmt:
					checkViewReturn(pass, stmt)
				}
				return true
			})
		}
	}
	return nil
}

// viewAccessorCall reports whether e is a direct x.Accessor(...) call on
// one of the arena-aliasing View accessors. Wrapping the call — string(),
// append(), len() — breaks the match, which is exactly the copy (or
// non-escape) the invariant asks for.
func viewAccessorCall(e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !viewAccessors[sel.Sel.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}

// checkViewAssign flags accessor results assigned into selector targets
// (struct fields); plain local variables stay legal.
func checkViewAssign(pass *Pass, stmt *ast.AssignStmt) {
	if len(stmt.Lhs) != len(stmt.Rhs) {
		return
	}
	for i, rhs := range stmt.Rhs {
		name, ok := viewAccessorCall(rhs)
		if !ok {
			continue
		}
		if sel, isSel := stmt.Lhs[i].(*ast.SelectorExpr); isSel {
			pass.Reportf(rhs.Pos(),
				"View.%s result aliases the parser's arena and dies on Parser reuse; copy it before storing it in %s",
				name, exprText(sel))
		}
	}
}

// checkViewComposite flags accessor results used directly as composite
// literal elements (keyed or positional).
func checkViewComposite(pass *Pass, lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		expr := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			expr = kv.Value
		}
		if name, ok := viewAccessorCall(expr); ok {
			pass.Reportf(expr.Pos(),
				"View.%s result aliases the parser's arena and dies on Parser reuse; copy it before placing it in a composite literal",
				name)
		}
	}
}

// checkViewReturn flags accessor results returned directly — the alias
// escapes to a caller who cannot see the Parser's lifetime.
func checkViewReturn(pass *Pass, stmt *ast.ReturnStmt) {
	for _, res := range stmt.Results {
		if name, ok := viewAccessorCall(res); ok {
			pass.Reportf(res.Pos(),
				"View.%s result aliases the parser's arena and dies on Parser reuse; copy it before returning it",
				name)
		}
	}
}
