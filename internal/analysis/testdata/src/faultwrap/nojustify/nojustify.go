// Package nojustify verifies that a //lint:ignore without a
// justification suppresses nothing: the finding below still fires.
package nojustify

import "fmt"

func bad() error {
	//lint:ignore faultwrap
	return fmt.Errorf("feam: unjustified suppression") // want `bare fmt.Errorf`
}
