// Package faultwrap is golden input for the faultwrap analyzer (the
// package name contains "fault", so the invariant applies as it does to
// internal/feam and internal/fault).
package faultwrap

import (
	"errors"
	"fmt"
)

// Package-level sentinels are the taxonomy itself — errors.New is legal
// in declarations, only bare returns are flagged.
var (
	ErrNoEnvironment = errors.New("feam: no environment to evaluate")
	errInternal      = errors.New("feam: internal")
)

// okSentinelWrap wraps a pipeline sentinel with %w.
func okSentinelWrap(site string) error {
	return fmt.Errorf("%w: survey of %s failed", ErrNoEnvironment, site)
}

// okCauseWrap wraps the underlying cause with %w, preserving
// fault.IsTransient classification through errors.As.
func okCauseWrap(err error) error {
	return fmt.Errorf("feam: staging: %w", err)
}

// okDoubleWrap wraps both sentinel and cause (the Predict pattern).
func okDoubleWrap(err error) error {
	return fmt.Errorf("%w: probe run: %w", ErrNoEnvironment, err)
}

// okPlainReturn returns an existing error unchanged.
func okPlainReturn(err error) error {
	return err
}

// badBare returns a taxonomy-free error.
func badBare() error {
	return fmt.Errorf("feam: something went wrong") // want `bare fmt.Errorf`
}

// badSwallowed flattens its cause with %v — errors.Is/As and
// fault.IsTransient stop working downstream (the wrapped-vs-swallowed
// edge case from the issue checklist).
func badSwallowed(err error) error {
	return fmt.Errorf("feam: describe: %v", err) // want `swallowing the fault taxonomy`
}

// badErrorStringified stringifies the cause through err.Error().
func badErrorStringified(err error) error {
	return fmt.Errorf("feam: %s", err.Error()) // want `swallowing the fault taxonomy`
}

// badErrorsNew mints an unclassifiable error at the return site.
func badErrorsNew() error {
	return errors.New("feam: not wired into the taxonomy") // want `bare errors.New`
}

// suppressedBare documents why this error is deliberately standalone; the
// justified annotation satisfies the analyzer (no want clause: the
// harness verifies suppression).
func suppressedBare() error {
	//lint:ignore faultwrap user-facing usage error, not a pipeline fault
	return fmt.Errorf("usage: feam -config <file>")
}
