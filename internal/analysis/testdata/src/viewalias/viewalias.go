// Package viewalias seeds golden violations for the viewalias analyzer:
// elfimg.View []byte accessor results escaping the parse that produced
// them without a copy.
package viewalias

import "feam/internal/elfimg"

type record struct {
	soname []byte
	interp []byte
	name   string
}

func badFieldStore(v *elfimg.View, r *record) {
	r.soname = v.Soname() // want `View.Soname result aliases the parser's arena`
}

func badComposite(v *elfimg.View) record {
	return record{interp: v.Interp()} // want `View.Interp result aliases the parser's arena`
}

func badPositional(v *elfimg.View, i int) [][]byte {
	return [][]byte{v.NeededAt(i)} // want `View.NeededAt result aliases the parser's arena`
}

func badReturn(v *elfimg.View, i int) []byte {
	return v.VerDefAt(i) // want `View.VerDefAt result aliases the parser's arena`
}

func legalCopies(v *elfimg.View, r *record) []byte {
	// Copies break the alias: conversions and appends are safe to store
	// or return.
	r.name = string(v.Soname())
	r.soname = append([]byte(nil), v.Soname()...)
	return append([]byte(nil), v.VerNeedFileAt(0)...)
}

func legalLocalUse(v *elfimg.View) int {
	// Reading within the parse's lifetime is the point of the zero-alloc
	// walkers; locals never fire.
	s := v.Soname()
	return len(s) + len(v.Interp())
}

type cache struct{ interp []byte }

func justifiedAlias(v *elfimg.View, c *cache) {
	//lint:ignore viewalias the view's backing arena outlives this cache by construction
	c.interp = v.Interp()
}
