// Package lockorder is golden input for the lockorder analyzer.
package lockorder

import "sync"

type engine struct {
	mu    sync.Mutex
	locks map[string]*sync.Mutex
}

// SiteLock mirrors Engine.SiteLock: leaf-mutex-guarded map access only.
func (e *engine) SiteLock(name string) *sync.Mutex {
	e.mu.Lock()
	defer e.mu.Unlock()
	l, ok := e.locks[name]
	if !ok {
		l = &sync.Mutex{}
		e.locks[name] = l
	}
	return l
}

func runProbe() {}

func (e *engine) Evaluate() {}

// okLeafUse holds the engine mutex for map bookkeeping only.
func (e *engine) okLeafUse(k string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.locks)
}

// okSnapshotThenWork unlocks before the blocking call.
func (e *engine) okSnapshotThenWork() {
	e.mu.Lock()
	n := len(e.locks)
	e.mu.Unlock()
	_ = n
	runProbe()
}

// okProbeUnderSiteLock is the documented contract: probes and staging run
// under the per-site serialization lock.
func (e *engine) okProbeUnderSiteLock() {
	l := e.SiteLock("a")
	l.Lock()
	defer l.Unlock()
	runProbe()
	e.Evaluate()
}

// badProbeUnderMu blocks the whole engine on one probe run.
func (e *engine) badProbeUnderMu() {
	e.mu.Lock()
	defer e.mu.Unlock()
	runProbe() // want `while holding e.mu`
}

// badEvaluateUnderMu reenters the pipeline under the leaf mutex.
func (e *engine) badEvaluateUnderMu() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.Evaluate() // want `while holding e.mu`
}

// badLockUnderMu acquires another lock while holding the leaf mutex.
func (e *engine) badLockUnderMu() {
	e.mu.Lock()
	defer e.mu.Unlock()
	l := e.SiteLock("a")
	l.Lock() // want `while holding the leaf mutex e.mu`
	l.Unlock()
}

// badNestedSiteLocks holds two unordered per-site locks at once: two
// surveys visiting the same pair of sites in opposite orders deadlock.
func (e *engine) badNestedSiteLocks() {
	a := e.SiteLock("a")
	a.Lock()
	defer a.Unlock()
	b := e.SiteLock("b")
	b.Lock() // want `per-site locks are unordered`
	defer b.Unlock()
}

// badProbeUnderMuInBranch is caught inside nested blocks too.
func (e *engine) badProbeUnderMuInBranch(cond bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cond {
		runProbe() // want `while holding e.mu`
	}
}

// suppressedProbeUnderMu documents a deliberate exception (no want
// clause: the harness verifies suppression).
func (e *engine) suppressedProbeUnderMu() {
	e.mu.Lock()
	defer e.mu.Unlock()
	//lint:ignore lockorder startup-only path, no concurrent callers yet
	runProbe()
}
