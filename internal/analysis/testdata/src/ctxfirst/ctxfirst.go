// Package ctxfirst is golden input for the ctxfirst analyzer.
package ctxfirst

import (
	"context"

	"feam/internal/fault"
)

// okFirst has the context where pipeline entry points put it.
func okFirst(ctx context.Context, name string) error {
	return run(ctx)
}

func run(ctx context.Context) error { return ctx.Err() }

// badOrder buries the context behind data arguments.
func badOrder(name string, ctx context.Context) error { // want `context.Context must be the first parameter`
	return run(ctx)
}

// badMethodOrder applies to methods too.
type engine struct{}

func (e *engine) badMethodOrder(n int, ctx context.Context) error { // want `context.Context must be the first parameter`
	return run(ctx)
}

// badLiteralOrder applies to function literals (evaluator closures).
var handler = func(name string, ctx context.Context) error { // want `context.Context must be the first parameter`
	return run(ctx)
}

// badMint already holds a context but manufactures a detached one,
// dropping cancellation and the span parent.
func badMint(ctx context.Context) error {
	return run(context.Background()) // want `detaches the call from cancellation`
}

// badMintTODO is the TODO variant.
func badMintTODO(ctx context.Context, n int) error {
	_ = n
	return run(context.TODO()) // want `detaches the call from cancellation`
}

// okRetry threads the caller's context into the retry helper.
func okRetry(ctx context.Context, p fault.RetryPolicy, op func() error) error {
	_, err := fault.Retry(ctx, p, op)
	return err
}

// okRetryViaStruct matches the EvalContext pattern: the context rides in
// a struct field whose name still marks it as a context.
type evalCtx struct{ Context context.Context }

func okRetryViaStruct(ec *evalCtx, p fault.RetryPolicy, op func() error) error {
	_, err := fault.Retry(ec.Context, p, op)
	return err
}

// badRetryFirstArg hands the retry helper something that is not the
// caller's context, making the backoff sleeps uncancellable.
func badRetryFirstArg(p fault.RetryPolicy, op func() error) error {
	_, err := fault.Retry(p, op) // want `must receive the caller's context`
	return err
}

// suppressedMint is a package-level shim that documents why a fresh
// context is correct here (no want clause: the harness verifies
// suppression).
func suppressedMint(ctx context.Context) error {
	//lint:ignore ctxfirst compatibility shim detaches deliberately
	return run(context.Background())
}
