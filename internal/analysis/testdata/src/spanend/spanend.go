// Package spanend is golden input for the spanend analyzer. It is parsed,
// never compiled; the obs import resolves by path suffix only.
package spanend

import "feam/internal/obs"

func work() {}

// okDefer ends its span through the canonical defer.
func okDefer(t *obs.Tracer) {
	sp := t.Start(obs.OpProbe)
	defer sp.End(nil)
	work()
}

// okStraightLine ends the span on the only path.
func okStraightLine(t *obs.Tracer) {
	sp := t.Start(obs.OpProbe)
	work()
	sp.End(nil)
}

// okDeferredClosure ends the span inside a deferred closure (the
// assessSite panic-recovery pattern).
func okDeferredClosure(t *obs.Tracer) {
	sp := t.Start(obs.OpProbe)
	defer func() {
		sp.End(nil)
	}()
	work()
}

// okEnderClosure routes End through a named local closure (the stagePlan
// rollback pattern); calling the closure counts as ending.
func okEnderClosure(t *obs.Tracer, fail bool) {
	sp := t.Start(obs.OpProbe)
	rollback := func(err error) { sp.End(err) }
	if fail {
		rollback(nil)
		return
	}
	work()
	rollback(nil)
}

// okBothBranches ends the span on each branch before falling through.
func okBothBranches(t *obs.Tracer, cond bool) {
	sp := t.Start(obs.OpProbe)
	if cond {
		sp.End(nil)
	} else {
		sp.End(nil)
	}
}

// okEarlyReturnAfterEnd mirrors Engine.Describe: a cache-hit branch ends
// and returns, the miss path ends before its own return.
func okEarlyReturnAfterEnd(t *obs.Tracer, hit bool) int {
	sp := t.Start(obs.OpProbe)
	if hit {
		sp.End(nil)
		return 1
	}
	work()
	sp.End(nil)
	return 0
}

// okInLoop opens and ends one span per iteration (the runProbe pattern).
func okInLoop(t *obs.Tracer) {
	for i := 0; i < 3; i++ {
		sp := t.Start(obs.OpProbe)
		work()
		sp.End(nil)
	}
}

// badNeverEnded leaks its span on the only path.
func badNeverEnded(t *obs.Tracer) {
	sp := t.Start(obs.OpProbe) // want `span sp is not ended on every path`
	work()
	_ = sp
}

// badOneBranch ends the span on the taken branch only: the fall-through
// path leaks it (the analyzer edge case from the issue checklist).
func badOneBranch(t *obs.Tracer, cond bool) {
	sp := t.Start(obs.OpProbe) // want `span sp is not ended on every path`
	if cond {
		sp.End(nil)
		return
	}
	work()
}

// badReturnBeforeEnd returns on the error path without ending.
func badReturnBeforeEnd(t *obs.Tracer, err error) error {
	sp := t.Start(obs.OpProbe) // want `span sp is not ended on every path`
	if err != nil {
		return err
	}
	sp.End(nil)
	return nil
}

// badDiscarded drops the span on the floor, twice.
func badDiscarded(t *obs.Tracer) {
	t.Start(obs.OpProbe) // want `discarded`
	_ = t.Start(obs.OpProbe) // want `discarded`
}

// suppressed transfers span ownership to the caller; the justified
// annotation keeps the analyzer quiet (no want clause: the harness
// verifies suppression).
func suppressed(t *obs.Tracer) *obs.Span {
	//lint:ignore spanend caller takes ownership and ends the span
	sp := t.Start(obs.OpProbe)
	return sp
}
