// Package vfsonly is golden input for the vfsonly analyzer: direct os
// filesystem access outside internal/vfs and cmd/.
package vfsonly

import "os"

// badRead bypasses the vfs read path (no generation bump visibility, no
// fault injection).
func badRead(p string) ([]byte, error) {
	return os.ReadFile(p) // want `direct os.ReadFile bypasses internal/vfs`
}

// badWriteAndRename stages directly on the host filesystem.
func badWriteAndRename(tmp, dst string, data []byte) error {
	if err := os.WriteFile(tmp, data, 0o644); err != nil { // want `direct os.WriteFile`
		return err
	}
	return os.Rename(tmp, dst) // want `direct os.Rename`
}

// badFuncValue smuggles the call through a function value; the reference
// itself is flagged.
var badFuncValue = os.ReadFile // want `direct os.ReadFile`

// okEnv uses the os package for process environment, which is not
// virtualized.
func okEnv() string {
	return os.Getenv("HOME")
}

// suppressed reads a host-side seed corpus by design (no want clause:
// the harness verifies suppression).
func suppressed(p string) ([]byte, error) {
	//lint:ignore vfsonly seed corpora live on the host filesystem
	return os.ReadFile(p)
}
