package vfsonly

// The aliased-import edge case from the issue checklist: renaming the
// package must not hide the call from the analyzer.

import hostfs "os"

func badAliased(p string) error {
	return hostfs.RemoveAll(p) // want `direct os.RemoveAll`
}

func badAliasedStat(p string) bool {
	_, err := hostfs.Stat(p) // want `direct os.Stat`
	return err == nil
}
