package vfsonly

// Dot-importing os would make every filesystem call an unqualified
// identifier the analyzer cannot see; the import itself is the finding.

import . "os" // want `dot-importing os`

func badDot(p string) error {
	return Remove(p)
}
