// Package noobserver seeds golden violations for the noobserver analyzer:
// the legacy Observer entry points must stay deleted.
package noobserver

type engine struct{}

func (e *engine) AddSink(s any)     {}
func (e *engine) addWatcher(s any)  {}
func (e *engine) AddObserver(o any) {} // want `declaration of AddObserver reintroduces the removed Observer path`

func WithObserver(o any) func() { // want `declaration of WithObserver reintroduces the removed Observer path`
	return func() {}
}

func legal(e *engine) {
	// Span sinks and metrics registries are the supported observation
	// path; nothing here should fire.
	e.AddSink(nil)
	e.addWatcher(nil)
}

func creepsBack(e *engine) {
	e.AddObserver(nil)    // want `call to AddObserver uses the removed Observer path`
	_ = WithObserver(nil) // want `call to WithObserver uses the removed Observer path`
}
