package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// VFSOnly enforces the simulation-boundary invariant introduced by PR 1
// and hardened in PR 2: all filesystem access goes through internal/vfs.
// A direct os.* filesystem call bypasses the vfs generation counter that
// keys the EDC cache (stale surveys would be served for a mutated site)
// and the SetOpHook fault injectors (the operation becomes untestable
// under injected faults). Only internal/vfs itself and the command /
// example binaries — which touch the real host filesystem by design —
// are exempt.
var VFSOnly = &Analyzer{
	Name: "vfsonly",
	Doc: "direct os filesystem calls are forbidden outside internal/vfs and cmd/; " +
		"they bypass the vfs generation counter (EDC cache key) and fault injectors",
	Run: runVFSOnly,
}

// vfsForbidden are the os package's filesystem entry points. Process and
// environment helpers (os.Getenv, os.Exit, os.Args) stay legal: only
// filesystem state is virtualized.
var vfsForbidden = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Remove": true, "RemoveAll": true, "Rename": true,
	"Symlink": true, "Link": true, "Readlink": true,
	"Stat": true, "Lstat": true, "Chmod": true, "Chown": true,
	"Chtimes": true, "Truncate": true,
}

func vfsOnlyApplies(pkgPath string) bool {
	if strings.Contains(pkgPath, "internal/vfs") {
		return false
	}
	for _, exempt := range []string{"/cmd/", "/examples/"} {
		if strings.Contains(pkgPath, exempt) {
			return false
		}
	}
	return true
}

func runVFSOnly(pass *Pass) error {
	if !vfsOnlyApplies(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		osNames := map[string]bool{}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || p != "os" {
				continue
			}
			if imp.Name != nil {
				if imp.Name.Name == "." {
					pass.Reportf(imp.Pos(), "dot-importing os makes every filesystem call invisible to vfsonly; import it qualified or use internal/vfs")
					continue
				}
				if imp.Name.Name != "_" {
					osNames[imp.Name.Name] = true
				}
			} else {
				osNames["os"] = true
			}
		}
		if len(osNames) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !osNames[id.Name] || !vfsForbidden[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(), "direct os.%s bypasses internal/vfs (generation counter keys the EDC cache; SetOpHook injects faults); use the site FS", sel.Sel.Name)
			return true
		})
	}
	return nil
}
