package analysis

import (
	"go/ast"
	"strings"
)

// SpanEnd enforces the observability invariant introduced by PR 3: every
// span opened with obs.Tracer.Start must be ended on every control-flow
// path — via a straight-line sp.End, a defer (directly or inside a
// deferred closure), or a locally defined closure that ends it (the
// rollback pattern in stagePlan). A span that escapes unended never
// reaches the ring buffer, the JSONL sink, or the latency histograms, so
// the op silently disappears from observability.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc: "every obs.Tracer.Start span must be ended (End or defer End) on all paths; " +
		"spans whose result is discarded are flagged too",
	Run: runSpanEnd,
}

func runSpanEnd(pass *Pass) error {
	for _, f := range pass.Files {
		obsNames := importNames(f, "internal/obs", "obs")
		for _, fb := range funcBodies(f) {
			checkSpansIn(pass, fb.body, obsNames)
		}
		// Function literals open spans too (evaluator closures); analyze
		// each literal body as its own scope.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkSpansIn(pass, lit.Body, obsNames)
			}
			return true
		})
	}
	return nil
}

// isStartCall recognizes a span-opening call: <recv>.Start(...) where the
// receiver names a tracer or any argument is qualified with the obs
// package (obs.OpX, obs.WithParent, ...).
func isStartCall(call *ast.CallExpr, obsNames map[string]bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Start" {
		return false
	}
	if strings.Contains(strings.ToLower(exprText(sel.X)), "tracer") {
		return true
	}
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if s, ok := n.(*ast.SelectorExpr); ok {
				if id, ok := s.X.(*ast.Ident); ok && obsNames[id.Name] {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// checkSpansIn finds Start assignments in body (not descending into nested
// function literals — they are separate scopes) and verifies each span is
// ended on all paths out of its enclosing block.
func checkSpansIn(pass *Pass, body *ast.BlockStmt, obsNames map[string]bool) {
	// Pre-pass: closures assigned to local names whose bodies end spans;
	// calling such a closure counts as ending the spans it mentions.
	enders := map[string]map[string]bool{} // closure name -> span vars ended
	collectEnderClosures(body, enders)

	var walkBlock func(stmts []ast.Stmt)
	walkBlock = func(stmts []ast.Stmt) {
		for i, stmt := range stmts {
			if as, ok := stmt.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
				if call, ok := as.Rhs[0].(*ast.CallExpr); ok && isStartCall(call, obsNames) {
					if len(as.Lhs) == 1 {
						if id, ok := as.Lhs[0].(*ast.Ident); ok {
							if id.Name == "_" {
								pass.Reportf(call.Pos(), "span from Tracer.Start is discarded; it can never be ended")
							} else if !endedOnAllPaths(stmts[i+1:], id.Name, enders) {
								pass.Reportf(call.Pos(), "span %s is not ended on every path out of this block; call %s.End (or defer it) before returning", id.Name, id.Name)
							}
							continue
						}
					}
					pass.Reportf(call.Pos(), "span from Tracer.Start must be assigned to a variable and ended")
				}
			}
			if es, ok := stmt.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok && isStartCall(call, obsNames) {
					pass.Reportf(call.Pos(), "span from Tracer.Start is discarded; it can never be ended")
				}
			}
			// Recurse into nested blocks to find Starts there (their End
			// obligation is scoped to their own block).
			for _, nested := range nestedStmtLists(stmt) {
				walkBlock(nested)
			}
		}
	}
	walkBlock(body.List)
}

// collectEnderClosures records local closures (name := func(...){...})
// whose bodies call <span>.End, keyed by closure name then span variable.
func collectEnderClosures(body *ast.BlockStmt, enders map[string]map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		name, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		lit, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		spans := spansEndedBy(lit.Body)
		if len(spans) > 0 {
			enders[name.Name] = spans
		}
		return true
	})
}

// spansEndedBy returns the set of identifiers x for which node contains a
// call x.End(...).
func spansEndedBy(node ast.Node) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			out[id.Name] = true
		}
		return true
	})
	return out
}

// nestedStmtLists returns the statement lists directly nested in stmt
// (if/else bodies, loop bodies, case bodies, plain blocks) — but not
// function literals, which are separate scopes.
func nestedStmtLists(stmt ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		if s.Else != nil {
			out = append(out, nestedStmtLists(s.Else)...)
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, nestedStmtLists(s.Stmt)...)
	}
	return out
}

// endedOnAllPaths reports whether every control-flow path through stmts
// ends span x before returning or falling off the end. The walk is a
// conservative structural approximation of a dominator analysis:
//
//   - defer x.End(...) (or a deferred closure / local ender closure)
//     satisfies all subsequent paths;
//   - a straight-line x.End(...) or ender-closure call marks the path
//     ended from that point;
//   - an if/switch requires each branch to either terminate ended or
//     fall through; fall-through merges branch states conservatively;
//   - loop bodies are checked for their internal return paths but do not
//     count toward the fall-through state (a loop may run zero times);
//   - break/continue are treated as non-escaping (the iteration structure
//     will pass the End site again or the obligation is reported at the
//     enclosing block's exit).
func endedOnAllPaths(stmts []ast.Stmt, x string, enders map[string]map[string]bool) bool {
	violated := false
	ended, terminated := scanStmts(stmts, false, x, enders, &violated)
	// Falling off the end of the span's own block without an End leaks it;
	// nested lists falling through merely continue in their parent and are
	// accounted for by the caller's merge logic.
	if !terminated && !ended {
		violated = true
	}
	return !violated
}

// scanStmts walks one statement list; ended is whether x.End already ran
// on the path entering the list. It returns (endedAfter, terminated):
// endedAfter is the fall-through state, terminated means no path falls
// through. Violations (a path escaping unended) set *violated.
func scanStmts(stmts []ast.Stmt, ended bool, x string, enders map[string]map[string]bool, violated *bool) (bool, bool) {
	for i, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.DeferStmt:
			if deferEnds(s, x, enders) {
				ended = true
			}
		case *ast.ExprStmt:
			if callEnds(s.X, x, enders) {
				ended = true
			}
		case *ast.ReturnStmt:
			if !ended {
				*violated = true
			}
			return ended, true
		case *ast.BranchStmt:
			// break/continue/goto: leaves this list without returning
			// from the function; treat as terminated without violation.
			return ended, true
		case *ast.BlockStmt:
			e, term := scanStmts(s.List, ended, x, enders, violated)
			ended = e
			if term {
				return ended, true
			}
		case *ast.IfStmt:
			bEnded, bTerm := scanStmts(s.Body.List, ended, x, enders, violated)
			eEnded, eTerm := ended, false
			switch el := s.Else.(type) {
			case *ast.BlockStmt:
				eEnded, eTerm = scanStmts(el.List, ended, x, enders, violated)
			case *ast.IfStmt:
				eEnded, eTerm = scanStmts([]ast.Stmt{el}, ended, x, enders, violated)
			}
			switch {
			case bTerm && eTerm:
				return ended, true
			case bTerm:
				ended = eEnded
			case eTerm:
				ended = bEnded
			default:
				ended = bEnded && eEnded
			}
		case *ast.ForStmt:
			scanStmts(s.Body.List, ended, x, enders, violated)
		case *ast.RangeStmt:
			scanStmts(s.Body.List, ended, x, enders, violated)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			var clauses [][]ast.Stmt
			hasDefault := false
			var body *ast.BlockStmt
			switch sw := s.(type) {
			case *ast.SwitchStmt:
				body = sw.Body
			case *ast.TypeSwitchStmt:
				body = sw.Body
			case *ast.SelectStmt:
				body = sw.Body
			}
			for _, c := range body.List {
				switch cc := c.(type) {
				case *ast.CaseClause:
					clauses = append(clauses, cc.Body)
					if cc.List == nil {
						hasDefault = true
					}
				case *ast.CommClause:
					clauses = append(clauses, cc.Body)
					if cc.Comm == nil {
						hasDefault = true
					}
				}
			}
			allEnded, anyFall := true, false
			for _, cl := range clauses {
				cEnded, cTerm := scanStmts(cl, ended, x, enders, violated)
				if !cTerm {
					anyFall = true
					allEnded = allEnded && cEnded
				}
			}
			switch {
			case hasDefault && !anyFall && len(clauses) > 0:
				return ended, true // every clause terminates, one always taken
			case hasDefault:
				ended = allEnded
			default:
				// No default clause: the no-match path falls through with
				// the incoming state.
				ended = ended && allEnded
			}
		case *ast.LabeledStmt:
			e, term := scanStmts([]ast.Stmt{s.Stmt}, ended, x, enders, violated)
			ended = e
			if term {
				return ended, true
			}
		case *ast.GoStmt:
			// A goroutine ending the span is not a guarantee on this path.
		}
		_ = i
	}
	return ended, false
}

// deferEnds reports whether a defer statement guarantees x.End: defer
// x.End(...), defer enderClosure(...), or defer func(){ ... x.End ... }().
func deferEnds(d *ast.DeferStmt, x string, enders map[string]map[string]bool) bool {
	if callEnds(d.Call, x, enders) {
		return true
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		return spansEndedBy(lit.Body)[x]
	}
	return false
}

// callEnds reports whether expr is a call that ends span x: x.End(...) or
// a call to a local closure known to end x.
func callEnds(expr ast.Expr, x string, enders map[string]map[string]bool) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name != "End" {
			return false
		}
		id, ok := fun.X.(*ast.Ident)
		return ok && id.Name == x
	case *ast.Ident:
		return enders[fun.Name][x]
	}
	return false
}
