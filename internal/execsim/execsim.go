// Package execsim is the ground-truth execution simulator: given a compiled
// artifact, a target site, and a selected MPI stack, it decides whether the
// program would actually run, reproducing the failure taxonomy the paper
// observed. The checks run in the order a real launch would encounter them:
//
//  1. the kernel rejects wrong-ISA/wrong-class images ("cannot execute
//     binary file"),
//  2. the dynamic loader resolves the dependency closure (missing shared
//     libraries, unsatisfied GLIBC_*/GLIBCXX_* symbol versions),
//  3. the MPI launch fails when the selected stack's implementation differs
//     from the one linked into the binary, or when the stack combination is
//     misconfigured site-wide,
//  4. hidden ABI-epoch mismatches in compiler runtimes or MPI libraries
//     crash the process,
//  5. CPU feature-level shortfalls trap with floating-point errors,
//  6. stochastic-but-deterministic system errors (daemon spawning,
//     communication timeouts) kill jobs independent of the binary, subject
//     to the paper's five spaced retry attempts.
//
// FEAM's prediction model never calls into the ground-truth attributes used
// by steps 4-6; it may only run *programs* (hello-world artifacts) through
// this simulator, exactly as the real framework runs test programs on real
// sites.
package execsim

import (
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"feam/internal/elfimg"
	"feam/internal/ldso"
	"feam/internal/libver"
	"feam/internal/sitemodel"
	"feam/internal/toolchain"
	"feam/internal/workload"
)

// FailureClass buckets execution outcomes.
type FailureClass int

const (
	OK FailureClass = iota
	FailISA
	FailMissingLib
	FailGlibcVersion
	FailSymbolVersion
	FailMPIMismatch
	FailStackBroken
	FailABI
	FailFPE
	FailSystem
)

func (c FailureClass) String() string {
	switch c {
	case OK:
		return "success"
	case FailISA:
		return "incompatible ISA"
	case FailMissingLib:
		return "missing shared library"
	case FailGlibcVersion:
		return "C library version"
	case FailSymbolVersion:
		return "symbol version (ABI)"
	case FailMPIMismatch:
		return "MPI implementation mismatch"
	case FailStackBroken:
		return "MPI stack not functioning"
	case FailABI:
		return "shared library ABI incompatibility"
	case FailFPE:
		return "floating point error"
	case FailSystem:
		return "system error"
	default:
		return fmt.Sprintf("FailureClass(%d)", int(c))
	}
}

// Result is one execution outcome.
type Result struct {
	Class  FailureClass
	Detail string
	// Attempts is how many launches were made (retry policy).
	Attempts int
	// Resolution is the loader evidence (nil when the ISA check failed).
	Resolution *ldso.Resolution
	// RunTime is the simulated wall-clock of the final attempt.
	RunTime time.Duration

	// transient marks a system error a retry might dodge.
	transient bool
}

// Success reports a clean run.
func (r Result) Success() bool { return r.Class == OK }

// Transient reports whether the failure was a transient system error a
// further retry might dodge (always false on success).
func (r Result) Transient() bool { return r.transient }

// Request describes a launch.
type Request struct {
	// Art is the program to run.
	Art *toolchain.Artifact
	// Site is where it runs.
	Site *sitemodel.Site
	// Stack is the selected MPI stack record (nil for serial programs; its
	// environment must already be loaded into the site env by the caller,
	// exactly as `module load` precedes `mpiexec` in real life).
	Stack *sitemodel.StackRecord
	// ExtraLibDirs are additional loader search directories (FEAM's staged
	// library copies).
	ExtraLibDirs []string
	// Tasks is the MPI task count (informational; defaults to 4).
	Tasks int
}

// Simulator holds the deterministic randomness for system errors.
type Simulator struct {
	// Seed drives the deterministic hash "randomness".
	Seed int64
	// MaxAttempts is the retry budget (the paper used five).
	MaxAttempts int
	// TransientRate is the per-attempt probability of a transient system
	// error that a retry can dodge.
	TransientRate float64
	// SuiteSysErrWeight scales a site's persistent system-error rate per
	// suite (long-running SPEC jobs hit more timeouts than NPB kernels).
	SuiteSysErrWeight map[workload.Suite]float64
}

// NewSimulator returns a simulator with the paper's retry policy.
func NewSimulator(seed int64) *Simulator {
	return &Simulator{
		Seed:          seed,
		MaxAttempts:   5,
		TransientRate: 0.08,
		SuiteSysErrWeight: map[workload.Suite]float64{
			workload.NPB:     0.4,
			workload.SPECMPI: 1.6,
		},
	}
}

// hashUnit maps a tuple of strings deterministically to [0, 1).
func (s *Simulator) hashUnit(parts ...string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", s.Seed)
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return float64(h.Sum64()%1e9) / 1e9
}

// Run launches the artifact with the retry policy and returns the final
// outcome.
func (s *Simulator) Run(req Request) Result {
	maxAttempts := s.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var res Result
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		res = s.runOnce(req, attempt)
		res.Attempts = attempt
		if res.Class != FailSystem || !res.transient {
			return res
		}
	}
	return res
}

// runOnce performs a single launch attempt.
func (s *Simulator) runOnce(req Request, attempt int) (res Result) {
	art, site := req.Art, req.Site
	res.RunTime = runTimeFor(art)

	// 1. ISA / word size.
	f, err := elfimg.Parse(art.Bytes)
	if err != nil {
		res.Class = FailISA
		res.Detail = "not an executable image: " + err.Error()
		return res
	}
	if f.Machine != site.Arch.Machine || f.Class != site.Arch.Class {
		res.Class = FailISA
		res.Detail = fmt.Sprintf("cannot execute %s binary on %s host", f.Format(), site.UnameMachine())
		return res
	}

	// 2. Dynamic loading.
	resolution, err := ldso.ResolveBytes(art.Bytes, art.Name, ldso.Options{
		FS:              site.FS(),
		LibraryPath:     splitPath(site.Getenv("LD_LIBRARY_PATH")),
		DefaultDirs:     site.DefaultLibDirs(),
		ExtraSearchDirs: req.ExtraLibDirs,
	})
	if err != nil {
		res.Class = FailISA
		res.Detail = err.Error()
		return res
	}
	res.Resolution = resolution
	if len(resolution.Missing) > 0 {
		res.Class = FailMissingLib
		res.Detail = resolution.Missing[0].String()
		return res
	}
	if len(resolution.VersionErrors) > 0 {
		ve := resolution.VersionErrors[0]
		if strings.HasPrefix(ve.Version, "GLIBC_") && libver.IsCLibraryName(ve.Library) {
			res.Class = FailGlibcVersion
		} else {
			res.Class = FailSymbolVersion
		}
		res.Detail = ve.String()
		return res
	}

	// 3. MPI launch.
	if art.Truth.Impl != "" {
		if req.Stack == nil {
			res.Class = FailMPIMismatch
			res.Detail = "no MPI stack selected for launch"
			return res
		}
		if req.Stack.Broken {
			res.Class = FailStackBroken
			res.Detail = fmt.Sprintf("stack %s is misconfigured; mpiexec cannot start", req.Stack.Key)
			return res
		}
		if req.Stack.Impl != art.Truth.Impl {
			res.Class = FailMPIMismatch
			res.Detail = fmt.Sprintf("binary linked against %s but stack %s selected",
				art.Truth.Impl, req.Stack.Key)
			return res
		}
	}

	// 4. Hidden ABI epochs: compiler runtimes, then the MPI library itself.
	for soname, required := range art.Truth.RuntimeEpochs {
		obj, ok := resolution.Objects[soname]
		if !ok {
			continue // unresolved cases already handled above
		}
		have := site.LibraryABIEpoch(obj.Path)
		if have != 0 && have < required {
			res.Class = FailABI
			res.Detail = fmt.Sprintf("%s: runtime ABI %d older than required %d (loaded from %s)",
				soname, have, required, obj.Path)
			return res
		}
	}
	if art.Truth.Impl != "" && art.Truth.MPILevel >= 3 {
		if obj := mpiObject(resolution); obj != nil {
			have := site.LibraryABIEpoch(obj.Path)
			if have != 0 && have < art.Truth.MPIABIEpoch {
				res.Class = FailABI
				res.Detail = fmt.Sprintf("%s: MPI ABI generation %d older than binary's %d",
					obj.Name, have, art.Truth.MPIABIEpoch)
				return res
			}
		}
	}

	// 5. CPU feature level.
	if art.Truth.FeatureLevel > site.Arch.FeatureLevel {
		res.Class = FailFPE
		res.Detail = fmt.Sprintf("floating point exception: code compiled for feature level %d, CPU provides %d",
			art.Truth.FeatureLevel, site.Arch.FeatureLevel)
		return res
	}

	// 6. System errors. Serial and hello-world probes are so short they
	// dodge the persistent failure modes of full application runs.
	if art.Truth.Impl != "" && !art.Truth.Hello {
		weight := 1.0
		if w, ok := s.SuiteSysErrWeight[art.Truth.Suite]; ok {
			weight = w
		}
		persistent := site.SysErrRate * weight
		if s.hashUnit("persistent", art.Name, site.Name) < persistent {
			res.Class = FailSystem
			res.Detail = "mpd daemon spawn failure on allocated nodes"
			return res
		}
		if s.hashUnit("transient", art.Name, site.Name, fmt.Sprint(attempt)) < s.TransientRate {
			res.Class = FailSystem
			res.Detail = "communication timeout (transient overload)"
			res.transient = true
			return res
		}
	}

	res.Class = OK
	res.Detail = "clean exit"
	return res
}

// mpiObject finds the loaded MPI library in a resolution.
func mpiObject(res *ldso.Resolution) *ldso.Object {
	for _, name := range res.Order {
		sn, err := libver.ParseSoname(name)
		if err != nil {
			continue
		}
		if sn.Stem == "mpi" || sn.Stem == "mpich" {
			return res.Objects[name]
		}
	}
	return nil
}

func splitPath(v string) []string {
	if v == "" {
		return nil
	}
	var out []string
	for _, d := range strings.Split(v, ":") {
		if d != "" {
			out = append(out, d)
		}
	}
	return out
}

// runTimeFor estimates the simulated execution duration.
func runTimeFor(art *toolchain.Artifact) time.Duration {
	switch {
	case art.Truth.Hello || art.Truth.Serial:
		return 5 * time.Second
	case art.Truth.Suite == workload.SPECMPI:
		return 12 * time.Minute
	default:
		return 3 * time.Minute
	}
}

// String renders "success" or "<class>: <detail>".
func (r Result) String() string {
	if r.Success() {
		return "success"
	}
	return r.Class.String() + ": " + r.Detail
}
