package execsim

import (
	"strings"
	"testing"

	"feam/internal/elfimg"
	"feam/internal/libver"
	"feam/internal/mpistack"
	"feam/internal/sitemodel"
	"feam/internal/toolchain"
	"feam/internal/workload"
)

// buildSite creates a fully provisioned site: glibc, GNU compiler, Open MPI
// 1.4 stack with its module-style environment loaded.
func buildSite(t *testing.T, name string, glibc libver.Version, featureLevel int) (*sitemodel.Site, *sitemodel.StackRecord) {
	t.Helper()
	site := sitemodel.New(name,
		sitemodel.Arch{Machine: elfimg.EMX8664, Class: elfimg.Class64, CPUName: "Xeon", FeatureLevel: featureLevel},
		sitemodel.OSInfo{Distro: "CentOS", Version: "5.6", Kernel: "2.6.18", ReleaseFile: "/etc/redhat-release"},
		glibc)
	if err := site.InstallCLibrary(); err != nil {
		t.Fatal(err)
	}
	gnu := &toolchain.CompilerInstall{Compiler: toolchain.Compiler{Family: toolchain.GNU, Version: "4.1.2"}}
	if err := gnu.Materialize(site); err != nil {
		t.Fatal(err)
	}
	inst := &mpistack.Install{
		Release:        mpistack.Release{Impl: mpistack.OpenMPI, Version: "1.4"},
		CompilerFamily: "gnu", CompilerVersion: "4.1.2",
		Interconnect: "ethernet", WithFortran: true,
	}
	rec, err := inst.Materialize(site)
	if err != nil {
		t.Fatal(err)
	}
	// Load the stack into the environment like `module load` would.
	site.Setenv("LD_LIBRARY_PATH", rec.Prefix+"/lib")
	site.Setenv("PATH", rec.Prefix+"/bin:"+site.Getenv("PATH"))
	return site, rec
}

func compileOn(t *testing.T, code string, site *sitemodel.Site, rec *sitemodel.StackRecord) *toolchain.Artifact {
	t.Helper()
	art, err := toolchain.Compile(workload.Find(code), rec, site)
	if err != nil {
		t.Fatal(err)
	}
	return art
}

func TestRunSuccessAtBuildSite(t *testing.T) {
	site, rec := buildSite(t, "india", libver.V(2, 5), 2)
	art := compileOn(t, "cg", site, rec)
	sim := NewSimulator(7)
	sim.SuiteSysErrWeight = nil // disable stochastic failures for this test
	site.SysErrRate = 0
	res := sim.Run(Request{Art: art, Site: site, Stack: rec})
	if !res.Success() {
		t.Fatalf("run failed: %v %s", res.Class, res.Detail)
	}
	if res.Resolution == nil || !res.Resolution.OK() {
		t.Error("no loader evidence")
	}
}

func TestISAFailure(t *testing.T) {
	site, rec := buildSite(t, "india", libver.V(2, 5), 2)
	art := compileOn(t, "cg", site, rec)
	ppc := sitemodel.New("bluegene",
		sitemodel.Arch{Machine: elfimg.EMPPC64, Class: elfimg.Class64, CPUName: "PPC970", FeatureLevel: 1},
		sitemodel.OSInfo{Distro: "SLES", Version: "10", Kernel: "2.6.16", ReleaseFile: "/etc/SuSE-release"},
		libver.V(2, 4))
	res := NewSimulator(1).Run(Request{Art: art, Site: ppc, Stack: nil})
	if res.Class != FailISA {
		t.Errorf("Class = %v", res.Class)
	}
	if !strings.Contains(res.Detail, "cannot execute") {
		t.Errorf("Detail = %q", res.Detail)
	}
}

func TestMissingLibraryFailure(t *testing.T) {
	src, srcRec := buildSite(t, "src", libver.V(2, 5), 1)
	art := compileOn(t, "bt", src, srcRec) // Fortran: needs libgfortran.so.1
	// Target has the same MPI stack but a GCC 4.4 toolchain (libgfortran.so.3).
	dst, dstRec := buildSite(t, "dst", libver.V(2, 5), 1)
	// Replace the Fortran runtime with the 4.4 flavor.
	for _, f := range []string{"/lib64/libgfortran.so.1", "/lib64/libgfortran.so.1.0.0", "/lib64/libgfortran.so"} {
		if err := dst.FS().Remove(f); err != nil {
			t.Fatal(err)
		}
	}
	res := NewSimulator(1).Run(Request{Art: art, Site: dst, Stack: dstRec})
	if res.Class != FailMissingLib {
		t.Fatalf("Class = %v (%s)", res.Class, res.Detail)
	}
	if !strings.Contains(res.Detail, "libgfortran.so.1") {
		t.Errorf("Detail = %q", res.Detail)
	}
	// FEAM-staged copies fix it (ExtraLibDirs path).
	libData, err := src.FS().ReadFile("/lib64/libgfortran.so.1.0.0")
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.FS().WriteFile("/feam/staged/libgfortran.so.1", libData); err != nil {
		t.Fatal(err)
	}
	res = NewSimulator(1).Run(Request{Art: art, Site: dst, Stack: dstRec, ExtraLibDirs: []string{"/feam/staged"}})
	if !res.Success() {
		t.Errorf("staged run failed: %v %s", res.Class, res.Detail)
	}
}

func TestGlibcVersionFailure(t *testing.T) {
	src, srcRec := buildSite(t, "forge", libver.V(2, 12), 1)
	art := compileOn(t, "lu", src, srcRec) // uncapped code tracks build glibc
	dst, dstRec := buildSite(t, "ranger", libver.V(2, 3, 4), 1)
	res := NewSimulator(1).Run(Request{Art: art, Site: dst, Stack: dstRec})
	if res.Class != FailGlibcVersion {
		t.Fatalf("Class = %v (%s)", res.Class, res.Detail)
	}
	if !strings.Contains(res.Detail, "GLIBC_2.12") {
		t.Errorf("Detail = %q", res.Detail)
	}
}

func TestMPIMismatchAndBrokenStack(t *testing.T) {
	site, rec := buildSite(t, "india", libver.V(2, 5), 2)
	art := compileOn(t, "is", site, rec)
	// No stack selected.
	res := NewSimulator(1).Run(Request{Art: art, Site: site, Stack: nil})
	if res.Class != FailMPIMismatch {
		t.Errorf("no-stack Class = %v", res.Class)
	}
	// Wrong implementation selected.
	wrong := &sitemodel.StackRecord{Key: "mpich2-1.4-gnu", Impl: "mpich2"}
	res = NewSimulator(1).Run(Request{Art: art, Site: site, Stack: wrong})
	if res.Class != FailMPIMismatch {
		t.Errorf("mismatch Class = %v", res.Class)
	}
	// Broken stack.
	broken := &sitemodel.StackRecord{Key: rec.Key, Impl: rec.Impl, Broken: true}
	res = NewSimulator(1).Run(Request{Art: art, Site: site, Stack: broken})
	if res.Class != FailStackBroken {
		t.Errorf("broken Class = %v", res.Class)
	}
}

func TestRuntimeABIFailure(t *testing.T) {
	// Build with PGI 11.5 at the source; the target carries the old PGI
	// 7.2 runtime generation, whose libpgc lacks the new entry points.
	src, _ := buildSite(t, "fir", libver.V(2, 5), 1)
	pgiNew := &toolchain.CompilerInstall{Compiler: toolchain.Compiler{Family: toolchain.PGI, Version: "11.5"}}
	if err := pgiNew.Materialize(src); err != nil {
		t.Fatal(err)
	}
	instSrc := &mpistack.Install{
		Release:        mpistack.Release{Impl: mpistack.OpenMPI, Version: "1.4"},
		CompilerFamily: "pgi", CompilerVersion: "11.5",
		Interconnect: "ethernet", WithFortran: true,
	}
	srcRec, err := instSrc.Materialize(src)
	if err != nil {
		t.Fatal(err)
	}
	art := compileOn(t, "104.milc", src, srcRec)

	dst, _ := buildSite(t, "ranger", libver.V(2, 5), 1)
	pgiOld := &toolchain.CompilerInstall{Compiler: toolchain.Compiler{Family: toolchain.PGI, Version: "7.2"}}
	if err := pgiOld.Materialize(dst); err != nil {
		t.Fatal(err)
	}
	instDst := &mpistack.Install{
		Release:        mpistack.Release{Impl: mpistack.OpenMPI, Version: "1.4"},
		CompilerFamily: "pgi", CompilerVersion: "7.2",
		Interconnect: "ethernet", WithFortran: true,
	}
	dstRec, err := instDst.Materialize(dst)
	if err != nil {
		t.Fatal(err)
	}
	dst.Setenv("LD_LIBRARY_PATH", dstRec.Prefix+"/lib")
	sim := NewSimulator(1)
	dst.SysErrRate = 0
	res := sim.Run(Request{Art: art, Site: dst, Stack: dstRec})
	if res.Class != FailABI {
		t.Fatalf("Class = %v (%s)", res.Class, res.Detail)
	}
	if !strings.Contains(res.Detail, "libpgc.so") {
		t.Errorf("Detail = %q", res.Detail)
	}
	// The reverse direction (old binary, new runtime) works: vendors keep
	// newer runtimes backward compatible.
	artOld, err := toolchain.Compile(workload.Find("104.milc"), dstRec, dst)
	if err != nil {
		t.Fatal(err)
	}
	src.Setenv("LD_LIBRARY_PATH", srcRec.Prefix+"/lib")
	src.SysErrRate = 0
	res = sim.Run(Request{Art: artOld, Site: src, Stack: srcRec})
	if res.Class == FailABI {
		t.Errorf("backward-compatible run failed: %s", res.Detail)
	}
}

func TestMPIABIEpochFailure(t *testing.T) {
	// lu uses advanced MPI (level 3); built against Open MPI 1.4, run on 1.3.
	src, srcRec := buildSite(t, "forge", libver.V(2, 5), 1)
	art := compileOn(t, "lu", src, srcRec)

	dst := sitemodel.New("ranger",
		sitemodel.Arch{Machine: elfimg.EMX8664, Class: elfimg.Class64, CPUName: "Opteron", FeatureLevel: 2},
		sitemodel.OSInfo{Distro: "CentOS", Version: "4.9", Kernel: "2.6.9", ReleaseFile: "/etc/redhat-release"},
		libver.V(2, 5))
	if err := dst.InstallCLibrary(); err != nil {
		t.Fatal(err)
	}
	gnu := &toolchain.CompilerInstall{Compiler: toolchain.Compiler{Family: toolchain.GNU, Version: "4.1.2"}}
	if err := gnu.Materialize(dst); err != nil {
		t.Fatal(err)
	}
	inst := &mpistack.Install{
		Release:        mpistack.Release{Impl: mpistack.OpenMPI, Version: "1.3"},
		CompilerFamily: "gnu", CompilerVersion: "4.1.2",
		Interconnect: "ethernet", WithFortran: true,
	}
	dstRec, err := inst.Materialize(dst)
	if err != nil {
		t.Fatal(err)
	}
	dst.Setenv("LD_LIBRARY_PATH", dstRec.Prefix+"/lib")
	dst.SysErrRate = 0
	res := NewSimulator(1).Run(Request{Art: art, Site: dst, Stack: dstRec})
	if res.Class != FailABI {
		t.Fatalf("Class = %v (%s)", res.Class, res.Detail)
	}
	// A level-1 code built the same way survives (ABI drift only bites
	// advanced MPI usage).
	art2 := compileOn(t, "ep", src, srcRec)
	res = NewSimulator(1).Run(Request{Art: art2, Site: dst, Stack: dstRec})
	if res.Class == FailABI {
		t.Errorf("basic MPI code hit ABI failure: %s", res.Detail)
	}
}

func TestFPEFailure(t *testing.T) {
	// Intel-built code on a high-feature CPU fails on a low-feature CPU.
	src, _ := buildSite(t, "forge", libver.V(2, 5), 3)
	intel := &toolchain.CompilerInstall{Compiler: toolchain.Compiler{Family: toolchain.Intel, Version: "12"}}
	if err := intel.Materialize(src); err != nil {
		t.Fatal(err)
	}
	inst := &mpistack.Install{
		Release:        mpistack.Release{Impl: mpistack.OpenMPI, Version: "1.4"},
		CompilerFamily: "intel", CompilerVersion: "12",
		Interconnect: "ethernet", WithFortran: true,
	}
	srcRec, err := inst.Materialize(src)
	if err != nil {
		t.Fatal(err)
	}
	art := compileOn(t, "104.milc", src, srcRec)
	if art.Truth.FeatureLevel != 3 {
		t.Fatalf("FeatureLevel = %d", art.Truth.FeatureLevel)
	}

	dst, _ := buildSite(t, "fir", libver.V(2, 5), 1)
	intelDst := &toolchain.CompilerInstall{Compiler: toolchain.Compiler{Family: toolchain.Intel, Version: "12"}}
	if err := intelDst.Materialize(dst); err != nil {
		t.Fatal(err)
	}
	instDst := &mpistack.Install{
		Release:        mpistack.Release{Impl: mpistack.OpenMPI, Version: "1.4"},
		CompilerFamily: "intel", CompilerVersion: "12",
		Interconnect: "ethernet", WithFortran: true,
	}
	dstRec, err := instDst.Materialize(dst)
	if err != nil {
		t.Fatal(err)
	}
	dst.Setenv("LD_LIBRARY_PATH", dstRec.Prefix+"/lib")
	dst.SysErrRate = 0
	res := NewSimulator(1).Run(Request{Art: art, Site: dst, Stack: dstRec})
	if res.Class != FailFPE {
		t.Fatalf("Class = %v (%s)", res.Class, res.Detail)
	}
	// The MPI hello world built at the source site detects the same issue —
	// the mechanism behind the paper's extended prediction.
	hello, err := toolchain.CompileHello(srcRec, src)
	if err != nil {
		t.Fatal(err)
	}
	res = NewSimulator(1).Run(Request{Art: hello, Site: dst, Stack: dstRec})
	if res.Class != FailFPE {
		t.Errorf("hello-world missed the FPE: %v (%s)", res.Class, res.Detail)
	}
}

func TestSystemErrorsDeterministicAndRetried(t *testing.T) {
	site, rec := buildSite(t, "india", libver.V(2, 5), 2)
	site.SysErrRate = 1.0 // every job hits the persistent failure
	art := compileOn(t, "cg", site, rec)
	sim := NewSimulator(3)
	sim.SuiteSysErrWeight = nil // weight 1.0: the rate applies unscaled
	res1 := sim.Run(Request{Art: art, Site: site, Stack: rec})
	res2 := sim.Run(Request{Art: art, Site: site, Stack: rec})
	if res1.Class != FailSystem || res2.Class != FailSystem {
		t.Fatalf("Classes = %v, %v", res1.Class, res2.Class)
	}
	if res1.Detail != res2.Detail {
		t.Error("system errors are not deterministic")
	}
	// Transient-only config: retries recover.
	site.SysErrRate = 0
	sim.TransientRate = 0.9999999 // force transient on (almost) every attempt
	res := sim.Run(Request{Art: art, Site: site, Stack: rec})
	if res.Attempts != sim.MaxAttempts {
		t.Errorf("Attempts = %d", res.Attempts)
	}
	sim.TransientRate = 0
	res = sim.Run(Request{Art: art, Site: site, Stack: rec})
	if !res.Success() || res.Attempts != 1 {
		t.Errorf("clean run: %+v", res)
	}
}

func TestHelloAndSerialSkipSystemErrors(t *testing.T) {
	site, rec := buildSite(t, "india", libver.V(2, 5), 2)
	site.SysErrRate = 1.0
	hello, err := toolchain.CompileHello(rec, site)
	if err != nil {
		t.Fatal(err)
	}
	res := NewSimulator(1).Run(Request{Art: hello, Site: site, Stack: rec})
	if !res.Success() {
		t.Errorf("hello failed: %v %s", res.Class, res.Detail)
	}
	serial, err := toolchain.CompileSerialHello(toolchain.Compiler{Family: toolchain.GNU, Version: "4.1.2"}, site)
	if err != nil {
		t.Fatal(err)
	}
	res = NewSimulator(1).Run(Request{Art: serial, Site: site})
	if !res.Success() {
		t.Errorf("serial hello failed: %v %s", res.Class, res.Detail)
	}
}

func TestFailureClassStrings(t *testing.T) {
	for c, want := range map[FailureClass]string{
		OK: "success", FailISA: "incompatible ISA", FailMissingLib: "missing shared library",
		FailGlibcVersion: "C library version", FailSystem: "system error",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestRunTimes(t *testing.T) {
	site, rec := buildSite(t, "india", libver.V(2, 5), 2)
	site.SysErrRate = 0
	npb := compileOn(t, "cg", site, rec)
	spec := compileOn(t, "104.milc", site, rec)
	sim := NewSimulator(1)
	sim.TransientRate = 0
	rn := sim.Run(Request{Art: npb, Site: site, Stack: rec})
	rs := sim.Run(Request{Art: spec, Site: site, Stack: rec})
	if rn.RunTime >= rs.RunTime {
		t.Errorf("NPB %v should run shorter than SPEC %v", rn.RunTime, rs.RunTime)
	}
}

func TestStaticBinaryExecution(t *testing.T) {
	site, rec := buildSite(t, "india", libver.V(2, 5), 2)
	site.SysErrRate = 0
	// Reinstall the stack with static archives and build a static binary.
	inst := &mpistack.Install{
		Release:        mpistack.Release{Impl: mpistack.OpenMPI, Version: "1.4"},
		CompilerFamily: "gnu", CompilerVersion: "4.1.2",
		Interconnect: "ethernet", WithFortran: true, WithStaticLibs: true,
		Prefix: "/opt/openmpi-static",
	}
	srec, err := inst.Materialize(site)
	if err != nil {
		t.Fatal(err)
	}
	art, err := toolchain.CompileStatic(workload.Find("is"), srec, site)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(1)
	sim.TransientRate = 0
	// Runs with a matching stack even with no library path at all.
	site.Setenv("LD_LIBRARY_PATH", "")
	res := sim.Run(Request{Art: art, Site: site, Stack: srec})
	if !res.Success() {
		t.Fatalf("static run failed: %v %s", res.Class, res.Detail)
	}
	// Still launch-protocol bound: a mismatched implementation fails.
	wrong := &sitemodel.StackRecord{Key: "mpich2-1.4-gnu", Impl: "mpich2"}
	res = sim.Run(Request{Art: art, Site: site, Stack: wrong})
	if res.Class != FailMPIMismatch {
		t.Errorf("Class = %v", res.Class)
	}
	_ = rec
}

func TestResultString(t *testing.T) {
	ok := Result{Class: OK}
	if ok.String() != "success" {
		t.Errorf("String = %q", ok.String())
	}
	bad := Result{Class: FailMissingLib, Detail: "libx.so.1 => not found"}
	if bad.String() != "missing shared library: libx.so.1 => not found" {
		t.Errorf("String = %q", bad.String())
	}
}
