package abicheck

import (
	"sort"

	"feam/internal/elfimg"
)

// SnapshotProvider is one indexed object in serialized form.
type SnapshotProvider struct {
	Path    string         `json:"path"`
	Class   elfimg.Class   `json:"class"`
	Machine elfimg.Machine `json:"machine"`
}

// SnapshotExport is one (symbol, version) export edge; Provider indexes
// the snapshot's provider list.
type SnapshotExport struct {
	Name     string `json:"name"`
	Version  string `json:"version,omitempty"`
	Provider int32  `json:"provider"`
}

// Snapshot is the serializable form of an Index, used by the engine's
// KindSymIndex store layer. Exports are emitted in deterministic
// (name, version, provider) order so identical indexes serialize
// identically.
type Snapshot struct {
	Site      string             `json:"site"`
	Stamp     uint64             `json:"stamp"`
	Providers []SnapshotProvider `json:"providers"`
	Exports   []SnapshotExport   `json:"exports"`
}

// Snapshot flattens the index.
func (ix *Index) Snapshot() *Snapshot {
	s := &Snapshot{Site: ix.site, Stamp: ix.stamp}
	for _, p := range ix.providers {
		s.Providers = append(s.Providers, SnapshotProvider{Path: p.path, Class: p.cls, Machine: p.mach})
	}
	names := make([]string, 0, len(ix.plain))
	for n := range ix.plain {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		versioned := map[int32]bool{}
		versions := make([]string, 0, len(ix.exact[n]))
		for v := range ix.exact[n] {
			versions = append(versions, v)
		}
		sort.Strings(versions)
		for _, v := range versions {
			for _, id := range ix.exact[n][v] {
				versioned[id] = true
				s.Exports = append(s.Exports, SnapshotExport{Name: n, Version: v, Provider: id})
			}
		}
		for _, id := range ix.plain[n] {
			if !versioned[id] {
				s.Exports = append(s.Exports, SnapshotExport{Name: n, Provider: id})
			}
		}
	}
	return s
}

// FromSnapshot rebuilds a live index. Export edges referencing unknown
// providers are dropped rather than trusted — snapshots cross a
// persistence boundary.
func FromSnapshot(s *Snapshot) *Index {
	ix := &Index{
		site:  s.Site,
		stamp: s.Stamp,
		plain: map[string][]int32{},
		exact: map[string]map[string][]int32{},
	}
	for _, p := range s.Providers {
		ix.providers = append(ix.providers, provider{path: p.Path, cls: p.Class, mach: p.Machine})
	}
	for _, e := range s.Exports {
		if e.Provider < 0 || int(e.Provider) >= len(ix.providers) {
			continue
		}
		if _, ok := ix.plain[e.Name]; !ok {
			ix.symbols++
		}
		ix.plain[e.Name] = append(ix.plain[e.Name], e.Provider)
		if e.Version != "" {
			vm := ix.exact[e.Name]
			if vm == nil {
				vm = map[string][]int32{}
				ix.exact[e.Name] = vm
			}
			vm[e.Version] = append(vm[e.Version], e.Provider)
		}
	}
	return ix
}
