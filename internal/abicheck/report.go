package abicheck

import (
	"fmt"
	"strings"

	"feam/internal/elfimg"
	"feam/internal/ldso"
)

// SymbolVerdict is one import's resolution outcome inside a Report.
type SymbolVerdict struct {
	Symbol   string  `json:"symbol"`
	Version  string  `json:"version,omitempty"`
	Library  string  `json:"library,omitempty"`
	Verdict  Verdict `json:"verdict"`
	Provider string  `json:"provider,omitempty"`
}

// Report is the materialized result of resolving one binary against one
// site index: per-symbol verdicts plus the counts the determinant trail
// and the /v1/abi endpoint render.
type Report struct {
	Binary    string `json:"binary"`
	Site      string `json:"site"`
	Libraries int    `json:"libraries"`

	Total     int `json:"symbols"`
	Resolved  int `json:"resolved"`
	Missing   int `json:"missing"`
	Mismatch  int `json:"version_mismatch"`
	Conflicts int `json:"class_conflict"`

	// MPIImports/MPIResolved count the MPI_-prefixed subset: when every
	// MPI entry point resolves, the standardized symbol surface is
	// satisfied regardless of which implementation exports it.
	MPIImports  int `json:"mpi_imports"`
	MPIResolved int `json:"mpi_resolved"`

	Symbols   []SymbolVerdict `json:"verdicts,omitempty"`
	Agreement *Agreement      `json:"agreement,omitempty"`
}

// OK reports whether every import resolved.
func (r *Report) OK() bool { return r.Missing+r.Mismatch+r.Conflicts == 0 }

// MPIStandardSatisfied reports whether the binary imports MPI entry
// points and all of them resolve — the ABI-standard compatibility class.
func (r *Report) MPIStandardSatisfied() bool {
	return r.MPIImports > 0 && r.MPIImports == r.MPIResolved
}

// Summary is the one-line verdict count for determinant details and logs.
func (r *Report) Summary() string {
	return fmt.Sprintf("%d symbols: %d resolved, %d missing, %d version-mismatch, %d class-conflict (%d libraries indexed)",
		r.Total, r.Resolved, r.Missing, r.Mismatch, r.Conflicts, r.Libraries)
}

// Diff returns the determinant-trail lines for every non-resolved
// symbol, in symbol-table order — what changed between "sonames present"
// and "symbols bind".
func (r *Report) Diff() []string {
	var out []string
	for _, sv := range r.Symbols {
		if sv.Verdict == VerdictResolved {
			continue
		}
		sym := sv.Symbol
		if sv.Version != "" {
			sym += "@" + sv.Version
		}
		line := fmt.Sprintf("%s: %s", sym, sv.Verdict)
		if sv.Provider != "" {
			line += " (nearest provider " + sv.Provider + ")"
		}
		out = append(out, line)
	}
	return out
}

// CheckView resolves every imported dynamic symbol of v against the
// index and materializes the full report.
func CheckView(v *elfimg.View, name string, ix *Index) *Report {
	r := &Report{Binary: name, Site: ix.site, Libraries: ix.Libraries()}
	cls, mach := v.Class(), v.Machine()
	v.Imports(func(sym elfimg.SymbolRef) bool {
		verdict, prov := ix.lookup(sym.Name, sym.Version, cls, mach)
		sv := SymbolVerdict{
			Symbol:   string(sym.Name),
			Version:  string(sym.Version),
			Library:  string(sym.Library),
			Verdict:  verdict,
			Provider: prov,
		}
		r.Total++
		switch verdict {
		case VerdictResolved:
			r.Resolved++
		case VerdictMissing:
			r.Missing++
		case VerdictVersionMismatch:
			r.Mismatch++
		case VerdictClassConflict:
			r.Conflicts++
		}
		if strings.HasPrefix(sv.Symbol, "MPI_") {
			r.MPIImports++
			if verdict == VerdictResolved {
				r.MPIResolved++
			}
		}
		r.Symbols = append(r.Symbols, sv)
		return true
	})
	return r
}

// Check parses the binary and resolves it against the index.
func Check(bin []byte, name string, ix *Index) (*Report, error) {
	var p elfimg.Parser
	v, err := p.Parse(bin)
	if err != nil {
		return nil, fmt.Errorf("abicheck: %s: %w", name, err)
	}
	return CheckView(v, name, ix), nil
}

// Agreement records whether the index resolver and the independent
// soname-closure checker (eager symbol binding over the ldd-style NEEDED
// graph) reach the same overall verdict for a binary — the cross-tool
// agreement measurement of Sochat & Haines. The two tools genuinely
// differ: the closure checker only binds against libraries reachable
// through DT_NEEDED and skips versioned imports whose declared provider
// never loaded, while the index sees the whole site.
type Agreement struct {
	Agree     bool   `json:"agree"`
	IndexOK   bool   `json:"index_ok"`
	ClosureOK bool   `json:"closure_ok"`
	Detail    string `json:"detail,omitempty"`
}

// Compare runs the soname-closure checker over the same binary and
// attaches the agreement verdict to the report. The comparison is
// symbol-level on both sides: the closure verdict counts only undefined
// symbols (missing sonames are the shared-library determinant's job).
func Compare(r *Report, bin []byte, name string, opts ldso.Options) (*Agreement, error) {
	opts.CheckSymbols = true
	res, err := ldso.ResolveBytes(bin, name, opts)
	if err != nil {
		return nil, fmt.Errorf("abicheck: closure check for %s: %w", name, err)
	}
	ag := &Agreement{
		IndexOK:   r.OK(),
		ClosureOK: len(res.UndefinedSymbols) == 0,
	}
	ag.Agree = ag.IndexOK == ag.ClosureOK
	if !ag.Agree {
		switch {
		case ag.IndexOK:
			var syms []string
			for i, u := range res.UndefinedSymbols {
				if i == 3 {
					syms = append(syms, "...")
					break
				}
				syms = append(syms, u.Symbol)
			}
			ag.Detail = "closure checker reports undefined symbols the site index resolves: " + strings.Join(syms, ", ")
		default:
			diff := r.Diff()
			if len(diff) > 3 {
				diff = append(diff[:3], "...")
			}
			ag.Detail = "site index refuses symbols the closure checker accepts: " + strings.Join(diff, "; ")
		}
	}
	r.Agreement = ag
	return ag, nil
}
