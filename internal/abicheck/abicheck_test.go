package abicheck_test

import (
	"reflect"
	"sync"
	"testing"

	"feam/internal/abicheck"
	"feam/internal/elfimg"
	"feam/internal/ldso"
	"feam/internal/testbed"
	"feam/internal/toolchain"
	"feam/internal/vfs"
	"feam/internal/workload"
)

var (
	tbOnce sync.Once
	tbVal  *testbed.Testbed
	tbErr  error
)

func sharedTestbed(t *testing.T) *testbed.Testbed {
	t.Helper()
	tbOnce.Do(func() { tbVal, tbErr = testbed.Build() })
	if tbErr != nil {
		t.Fatal(tbErr)
	}
	return tbVal
}

// TestSiteIndexResolvesCompiledMPIBinary is the package's acceptance
// test: the whole-site index built from Roots() must resolve every
// dynamic symbol of a binary actually compiled at the site — libc and
// libm imports through the default lib dirs, MPI entry points through
// the installed stack's /opt/<pkg>/lib.
func TestSiteIndexResolvesCompiledMPIBinary(t *testing.T) {
	tb := sharedTestbed(t)
	site := tb.ByName["india"]
	rec := site.FindStack("openmpi-1.4-gnu")
	if rec == nil {
		t.Fatal("no openmpi-1.4-gnu stack at india")
	}
	art, err := toolchain.Compile(workload.Find("cg"), rec, site)
	if err != nil {
		t.Fatal(err)
	}

	ix := abicheck.BuildIndex(site, nil, 0)
	if ix.Libraries() == 0 || ix.Symbols() == 0 {
		t.Fatalf("empty site index: %d libraries, %d symbols", ix.Libraries(), ix.Symbols())
	}

	r, err := abicheck.Check(art.Bytes, "cg.binary", ix)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total == 0 {
		t.Fatal("compiled binary shows no dynamic imports")
	}
	if len(r.Symbols) != r.Total {
		t.Fatalf("got %d per-symbol verdicts for %d imports", len(r.Symbols), r.Total)
	}
	for _, sv := range r.Symbols {
		if sv.Verdict != abicheck.VerdictResolved {
			t.Errorf("%s@%s: %s (provider %q)", sv.Symbol, sv.Version, sv.Verdict, sv.Provider)
		} else if sv.Provider == "" {
			t.Errorf("%s resolved without a provider path", sv.Symbol)
		}
	}
	if !r.OK() || r.Resolved != r.Total {
		t.Fatalf("report not clean: %s", r.Summary())
	}
	if r.MPIImports == 0 || !r.MPIStandardSatisfied() {
		t.Fatalf("MPI surface not satisfied: %d/%d", r.MPIResolved, r.MPIImports)
	}
	if d := r.Diff(); len(d) != 0 {
		t.Fatalf("clean report produced diff lines: %v", d)
	}
}

// latticeIndex hand-builds an index exposing every verdict class: a
// 64-bit libc exporting printf only at GLIBC_2.0, and a 32-bit library
// exporting a symbol nothing 64-bit provides.
func latticeIndex(t *testing.T) *abicheck.Index {
	t.Helper()
	b := abicheck.NewIndexBuilder("lattice", 7)
	b.AddObject("/lib64/libc-2.5.so", elfimg.MustBuild(elfimg.Spec{
		Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeDyn,
		Soname:  "libc.so.6",
		VerDefs: []string{"libc.so.6", "GLIBC_2.0"},
		Exports: []elfimg.ExportedSymbol{
			{Name: "printf", Version: "GLIBC_2.0"},
			{Name: "exit", Version: "GLIBC_2.0"},
		},
	}))
	b.AddObject("/lib/lib32only.so", elfimg.MustBuild(elfimg.Spec{
		Class: elfimg.Class32, Machine: elfimg.EM386, Type: elfimg.TypeDyn,
		Soname:  "lib32only.so",
		Exports: []elfimg.ExportedSymbol{{Name: "only32_frob"}},
	}))
	// Non-ELF bystanders (linker scripts, text stubs) must be skipped, not
	// rejected.
	b.AddObject("/lib64/libfake.so", []byte("GROUP ( /lib64/libc-2.5.so )"))
	return b.Index()
}

// latticeBinary imports one symbol per verdict class.
func latticeBinary() []byte {
	return elfimg.MustBuild(elfimg.Spec{
		Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeExec,
		Interp: "/lib64/ld-linux-x86-64.so.2",
		Needed: []string{"libc.so.6"},
		VerNeeds: []elfimg.VerNeed{
			{File: "libc.so.6", Versions: []string{"GLIBC_2.0", "GLIBC_9.9"}},
		},
		Imports: []elfimg.ImportedSymbol{
			{Name: "printf", Version: "GLIBC_2.0", Library: "libc.so.6"},
			{Name: "exit", Version: "GLIBC_9.9", Library: "libc.so.6"},
			{Name: "nothing_exports_this"},
			{Name: "only32_frob"},
		},
	})
}

// TestVerdictLattice pins the resolver's classification: resolved,
// version-mismatch (name present, version absent, compatible provider
// exists), missing (no exporter at all), and class-conflict (only
// exporters of an incompatible class/machine).
func TestVerdictLattice(t *testing.T) {
	ix := latticeIndex(t)
	if ix.Libraries() != 2 {
		t.Fatalf("indexed %d libraries, want 2 (bystander must be skipped)", ix.Libraries())
	}
	r, err := abicheck.Check(latticeBinary(), "lattice.bin", ix)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]abicheck.Verdict{
		"printf":               abicheck.VerdictResolved,
		"exit":                 abicheck.VerdictVersionMismatch,
		"nothing_exports_this": abicheck.VerdictMissing,
		"only32_frob":          abicheck.VerdictClassConflict,
	}
	if r.Total != len(want) {
		t.Fatalf("Total = %d, want %d", r.Total, len(want))
	}
	for _, sv := range r.Symbols {
		if w, ok := want[sv.Symbol]; !ok {
			t.Errorf("unexpected symbol %q in report", sv.Symbol)
		} else if sv.Verdict != w {
			t.Errorf("%s = %s, want %s", sv.Symbol, sv.Verdict, w)
		}
	}
	if r.Resolved != 1 || r.Missing != 1 || r.Mismatch != 1 || r.Conflicts != 1 {
		t.Fatalf("counts wrong: %s", r.Summary())
	}
	if r.OK() {
		t.Fatal("report with failures claims OK")
	}
	if d := r.Diff(); len(d) != 3 {
		t.Fatalf("Diff lines = %d, want 3: %v", len(d), d)
	}
	// The version-mismatch and class-conflict verdicts name the nearest
	// provider so the trail shows what nearly bound.
	for _, sv := range r.Symbols {
		if sv.Verdict == abicheck.VerdictVersionMismatch && sv.Provider == "" {
			t.Errorf("version-mismatch for %s lacks nearest provider", sv.Symbol)
		}
	}
}

// TestProvides pins the ABI-standard surface primitive: Provides must be
// class-aware, and ProvidesAll must fail closed on the first gap.
func TestProvides(t *testing.T) {
	ix := latticeIndex(t)
	if !ix.Provides("printf", elfimg.Class64, elfimg.EMX8664) {
		t.Error("printf should be provided for 64-bit x86")
	}
	if ix.Provides("only32_frob", elfimg.Class64, elfimg.EMX8664) {
		t.Error("only32_frob must not satisfy a 64-bit consumer")
	}
	if !ix.Provides("only32_frob", elfimg.Class32, elfimg.EM386) {
		t.Error("only32_frob should be provided for 32-bit x86")
	}
	if ix.ProvidesAll([]string{"printf", "nothing_exports_this"}, elfimg.Class64, elfimg.EMX8664) {
		t.Error("ProvidesAll must fail when any name is missing")
	}
	if !ix.ProvidesAll([]string{"printf", "exit"}, elfimg.Class64, elfimg.EMX8664) {
		t.Error("ProvidesAll over provided names should pass")
	}
}

// TestSnapshotRoundTrip: the persistence form must rebuild an index with
// identical resolution behavior, and serialize deterministically.
func TestSnapshotRoundTrip(t *testing.T) {
	ix := latticeIndex(t)
	snap := ix.Snapshot()
	back := abicheck.FromSnapshot(snap)
	if back.Site() != ix.Site() || back.Stamp() != ix.Stamp() {
		t.Fatalf("identity lost: %s/%d vs %s/%d", back.Site(), back.Stamp(), ix.Site(), ix.Stamp())
	}
	if back.Libraries() != ix.Libraries() || back.Symbols() != ix.Symbols() {
		t.Fatalf("shape lost: %d/%d vs %d/%d",
			back.Libraries(), back.Symbols(), ix.Libraries(), ix.Symbols())
	}
	r1, err := abicheck.Check(latticeBinary(), "bin", ix)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := abicheck.Check(latticeBinary(), "bin", back)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Symbols, r2.Symbols) {
		t.Fatalf("round-trip changed verdicts:\n%+v\nvs\n%+v", r1.Symbols, r2.Symbols)
	}
	if !reflect.DeepEqual(snap, back.Snapshot()) {
		t.Fatal("re-snapshot of the rebuilt index differs")
	}
}

// agreementWorld stages a two-library filesystem where "pow" lives only
// in libm.so.6 — which the probe binary does NOT declare in DT_NEEDED.
// The whole-site index resolves pow anyway; the soname-closure checker
// cannot, because eager binding only sees libraries reachable through
// the NEEDED graph. That structural gap is the seeded cross-tool
// disagreement the agreement mode exists to measure.
func agreementWorld(t *testing.T) (*vfs.FS, *abicheck.Index) {
	t.Helper()
	fs := vfs.New()
	if err := fs.MkdirAll("/lib64"); err != nil {
		t.Fatal(err)
	}
	libc := elfimg.MustBuild(elfimg.Spec{
		Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeDyn,
		Soname:  "libc.so.6",
		VerDefs: []string{"libc.so.6", "GLIBC_2.0"},
		Exports: []elfimg.ExportedSymbol{{Name: "printf", Version: "GLIBC_2.0"}},
	})
	libm := elfimg.MustBuild(elfimg.Spec{
		Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeDyn,
		Soname:  "libm.so.6",
		VerDefs: []string{"libm.so.6", "GLIBC_2.0"},
		Exports: []elfimg.ExportedSymbol{{Name: "pow"}},
	})
	for p, data := range map[string][]byte{
		"/lib64/libc.so.6": libc,
		"/lib64/libm.so.6": libm,
	} {
		if err := fs.WriteFile(p, data); err != nil {
			t.Fatal(err)
		}
	}
	b := abicheck.NewIndexBuilder("agreement", 1)
	b.AddObject("/lib64/libc.so.6", libc)
	b.AddObject("/lib64/libm.so.6", libm)
	return fs, b.Index()
}

func agreementBinary(imports ...elfimg.ImportedSymbol) []byte {
	return elfimg.MustBuild(elfimg.Spec{
		Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeExec,
		Interp: "/lib64/ld-linux-x86-64.so.2",
		Needed: []string{"libc.so.6"},
		VerNeeds: []elfimg.VerNeed{
			{File: "libc.so.6", Versions: []string{"GLIBC_2.0"}},
		},
		Imports: imports,
	})
}

// TestAgreementSeededDisagreement is the acceptance test for the
// cross-tool agreement mode: at least one structurally-seeded
// disagreement, plus the agreeing control case.
func TestAgreementSeededDisagreement(t *testing.T) {
	fs, ix := agreementWorld(t)
	opts := ldso.Options{FS: fs, DefaultDirs: []string{"/lib64"}}

	// pow resolves in the site index (libm is on the site) but not in the
	// NEEDED closure (the binary never links libm).
	bin := agreementBinary(
		elfimg.ImportedSymbol{Name: "printf", Version: "GLIBC_2.0", Library: "libc.so.6"},
		elfimg.ImportedSymbol{Name: "pow"},
	)
	r, err := abicheck.Check(bin, "disagrees", ix)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("index should resolve everything: %s", r.Summary())
	}
	ag, err := abicheck.Compare(r, bin, "disagrees", opts)
	if err != nil {
		t.Fatal(err)
	}
	if ag.Agree || !ag.IndexOK || ag.ClosureOK {
		t.Fatalf("want seeded disagreement (index ok, closure not): %+v", ag)
	}
	if ag.Detail == "" {
		t.Fatal("disagreement carries no detail")
	}
	if r.Agreement != ag {
		t.Fatal("Compare did not attach the agreement to the report")
	}

	// Control: drop the out-of-closure import and the tools agree.
	ctrl := agreementBinary(
		elfimg.ImportedSymbol{Name: "printf", Version: "GLIBC_2.0", Library: "libc.so.6"},
	)
	rc, err := abicheck.Check(ctrl, "agrees", ix)
	if err != nil {
		t.Fatal(err)
	}
	agc, err := abicheck.Compare(rc, ctrl, "agrees", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !agc.Agree || !agc.IndexOK || !agc.ClosureOK {
		t.Fatalf("control case should agree: %+v", agc)
	}
}

// TestABIResolveAllocs pins the cached hot path: resolving a pre-parsed
// view against a warm index performs zero heap allocations. CI's
// bench-smoke job fails if this ever becomes nonzero.
func TestABIResolveAllocs(t *testing.T) {
	ix := latticeIndex(t)
	bin := latticeBinary()
	var p elfimg.Parser
	v, err := p.Parse(bin)
	if err != nil {
		t.Fatal(err)
	}
	var sink int
	resolve := func() {
		ix.Resolve(v, func(name, version []byte, verdict abicheck.Verdict, provider string) bool {
			sink += len(name) + len(version) + int(verdict) + len(provider)
			return true
		})
	}
	allocs := testing.AllocsPerRun(200, resolve)
	if allocs != 0 {
		t.Fatalf("cached resolve path allocated %.1f times per run, want 0", allocs)
	}
	if sink == 0 {
		t.Fatal("resolver observed no symbols")
	}
}
