package abicheck

import (
	"fmt"
	"testing"

	"feam/internal/elfimg"
	"feam/internal/ldso"
	"feam/internal/vfs"
)

// fuzzLibSeeds are realistic shared libraries rendered by the elfimg
// builder — verdef tables, versioned and unversioned exports, both
// classes — so mutation starts from inputs the defined-symbol and verdef
// walkers actually accept.
func fuzzLibSeeds() [][]byte {
	seeds := [][]byte{
		nil,
		[]byte("\x7fELF"),
		[]byte("not a library"),
	}
	specs := []elfimg.Spec{
		{Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeDyn,
			Soname:  "libc.so.6",
			VerDefs: []string{"libc.so.6", "GLIBC_2.0", "GLIBC_2.3.4"},
			Exports: []elfimg.ExportedSymbol{
				{Name: "printf", Version: "GLIBC_2.0"},
				{Name: "malloc", Version: "GLIBC_2.0"},
				{Name: "memcpy", Version: "GLIBC_2.3.4"},
			}},
		{Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeDyn,
			Soname:  "libmpich.so.1",
			Needed:  []string{"libc.so.6"},
			VerDefs: []string{"libmpich.so.1", "MPICH_1.2"},
			Exports: []elfimg.ExportedSymbol{
				{Name: "MPI_Init", Version: "MPICH_1.2"},
				{Name: "MPI_Finalize"},
			}},
		{Class: elfimg.Class32, Machine: elfimg.EM386, Type: elfimg.TypeDyn,
			Soname:  "libm.so.6",
			VerDefs: []string{"libm.so.6", "GLIBC_2.0"},
			Exports: []elfimg.ExportedSymbol{{Name: "sqrt", Version: "GLIBC_2.0"}}},
	}
	for _, spec := range specs {
		seeds = append(seeds, elfimg.MustBuild(spec))
	}
	return seeds
}

// fuzzProbe is the fixed binary every fuzzed index resolves: a versioned
// import, unversioned imports, and a symbol nothing provides, so every
// verdict class is reachable depending on what the mutated library still
// exports.
func fuzzProbe() []byte {
	return elfimg.MustBuild(elfimg.Spec{
		Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeExec,
		Interp: "/lib64/ld-linux-x86-64.so.2",
		Needed: []string{"libc.so.6"},
		VerNeeds: []elfimg.VerNeed{
			{File: "libc.so.6", Versions: []string{"GLIBC_2.0"}},
		},
		Imports: []elfimg.ImportedSymbol{
			{Name: "printf", Version: "GLIBC_2.0", Library: "libc.so.6"},
			{Name: "MPI_Init"},
			{Name: "no_such_symbol_anywhere"},
		},
	})
}

// FuzzSymbolIndex throws mutated library images at the index builder: the
// defined-symbol and verdef walkers must reject garbage without a panic,
// and whatever index results must resolve a fixed binary deterministically
// — including through a snapshot round-trip, the persistence path.
func FuzzSymbolIndex(f *testing.F) {
	for _, seed := range fuzzLibSeeds() {
		f.Add(seed)
	}
	probe := fuzzProbe()
	f.Fuzz(func(t *testing.T, data []byte) {
		b := NewIndexBuilder("fuzz", 1)
		b.AddObject("/lib64/fuzzed.so", data) // must never panic
		b.AddObject("/lib64/base.so", fuzzLibSeeds()[3])
		ix := b.Index()

		var p elfimg.Parser
		v, err := p.Parse(probe)
		if err != nil {
			t.Fatalf("fixed probe stopped parsing: %v", err)
		}
		first := resolveTrail(ix, v)
		if second := resolveTrail(ix, v); first != second {
			t.Fatalf("resolver is nondeterministic:\n%s\nvs\n%s", first, second)
		}

		report := CheckView(v, "probe", ix)
		if got := report.Resolved + report.Missing + report.Mismatch + report.Conflicts; got != report.Total {
			t.Fatalf("verdict counts %d do not sum to total %d", got, report.Total)
		}

		// The persistence round-trip must preserve every verdict.
		rehydrated := FromSnapshot(ix.Snapshot())
		if trail := resolveTrail(rehydrated, v); trail != first {
			t.Fatalf("snapshot round-trip changed verdicts:\n%s\nvs\n%s", first, trail)
		}

		// The agreement checker (the independent soname-closure resolver)
		// must judge the same fuzzed library deterministically too.
		fs := vfs.New()
		if err := fs.MkdirAll("/lib64"); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile("/lib64/libc.so.6", data); err != nil {
			t.Fatal(err)
		}
		opts := ldso.Options{FS: fs, DefaultDirs: []string{"/lib64"}}
		a1, err1 := Compare(CheckView(v, "probe", ix), probe, "probe", opts)
		a2, err2 := Compare(CheckView(v, "probe", ix), probe, "probe", opts)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("agreement checker errors nondeterministically: %v vs %v", err1, err2)
		}
		if err1 == nil && *a1 != *a2 {
			t.Fatalf("agreement checker is nondeterministic: %+v vs %+v", a1, a2)
		}
	})
}

// resolveTrail renders the streaming resolver's full output as one string
// for determinism comparison.
func resolveTrail(ix *Index, v *elfimg.View) string {
	var out string
	ix.Resolve(v, func(name, version []byte, verdict Verdict, provider string) bool {
		out += fmt.Sprintf("%s@%s=%s<%s>\n", name, version, verdict, provider)
		return true
	})
	return out
}
