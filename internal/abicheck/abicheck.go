// Package abicheck is a whole-fleet static analyzer over ELF dynamic-link
// state: it extracts a binary's undefined dynamic symbols and versioned
// requirements with the zero-copy elfimg.View walkers, builds a per-site
// index of every exported symbol the site's shared libraries define, and
// resolves each import to a per-symbol verdict. Where the paper's
// determinant ladder (and the ldso probe path) stop at soname presence,
// abicheck proves the symbols actually bind — the binary-level
// compatibility notion of Sochat & Haines (arXiv:2212.03364) and the MPI
// ABI standardization effort (arXiv:2308.11214).
//
// The package is engine-agnostic: it sees a sitemodel.Site's filesystem
// and environment, never the feam engine. Caching (the KindSymIndex
// registry/store layer) and determinant wiring live in internal/feam.
package abicheck

import (
	"fmt"
	"sort"
	"strings"

	"feam/internal/elfimg"
	"feam/internal/envmgmt"
	"feam/internal/sitemodel"
	"feam/internal/vfs"
)

// Verdict classifies one imported symbol against a site index.
type Verdict uint8

const (
	// VerdictResolved: a provider with the right ELF class/machine exports
	// the symbol at the requested version (or any version, for an
	// unversioned import).
	VerdictResolved Verdict = iota
	// VerdictMissing: no site library exports the symbol name at all.
	VerdictMissing
	// VerdictVersionMismatch: the name is exported, but never at the
	// requested version — the classic symbol-version migration failure.
	VerdictVersionMismatch
	// VerdictClassConflict: the only exporters are ELF objects of a
	// different class or machine than the binary — the name exists on the
	// site but could never bind into this process image.
	VerdictClassConflict
)

func (v Verdict) String() string {
	switch v {
	case VerdictResolved:
		return "resolved"
	case VerdictMissing:
		return "missing"
	case VerdictVersionMismatch:
		return "version-mismatch"
	case VerdictClassConflict:
		return "class-conflict"
	default:
		return fmt.Sprintf("verdict-%d", uint8(v))
	}
}

// MarshalText renders the verdict name into JSON reports.
func (v Verdict) MarshalText() ([]byte, error) { return []byte(v.String()), nil }

// UnmarshalText parses the verdict name back out of a JSON report.
func (v *Verdict) UnmarshalText(text []byte) error {
	switch string(text) {
	case "resolved":
		*v = VerdictResolved
	case "missing":
		*v = VerdictMissing
	case "version-mismatch":
		*v = VerdictVersionMismatch
	case "class-conflict":
		*v = VerdictClassConflict
	default:
		return fmt.Errorf("abicheck: unknown verdict %q", text)
	}
	return nil
}

// provider is one indexed shared object.
type provider struct {
	path string
	cls  elfimg.Class
	mach elfimg.Machine
}

// Index is the per-site exported-symbol table. Lookups are two direct
// map indexes keyed by string(name)/string(version) byte-slice
// conversions, which the compiler performs without allocating — the
// cached resolve path is 0 allocs/op.
type Index struct {
	site      string
	stamp     uint64
	providers []provider
	// plain maps a symbol name to every provider exporting it at any
	// version; exact narrows to providers exporting a specific version.
	plain   map[string][]int32
	exact   map[string]map[string][]int32
	symbols int
}

// Site returns the name the index was built for.
func (ix *Index) Site() string { return ix.site }

// Stamp returns the env-fingerprint/vfs-generation stamp recorded at
// build time (zero when the builder was fed directly).
func (ix *Index) Stamp() uint64 { return ix.stamp }

// Libraries returns the number of indexed shared objects.
func (ix *Index) Libraries() int { return len(ix.providers) }

// Symbols returns the number of distinct exported symbol names.
func (ix *Index) Symbols() int { return ix.symbols }

// IndexBuilder accumulates shared objects into an Index. It reuses one
// elfimg.Parser across objects; name and version bytes are copied out of
// the parser's view before the next Parse, so the finished Index owns
// its strings.
type IndexBuilder struct {
	parser elfimg.Parser
	seen   map[string]bool
	ix     *Index
}

// NewIndexBuilder starts an index for the named site.
func NewIndexBuilder(site string, stamp uint64) *IndexBuilder {
	return &IndexBuilder{
		seen: map[string]bool{},
		ix: &Index{
			site:  site,
			stamp: stamp,
			plain: map[string][]int32{},
			exact: map[string]map[string][]int32{},
		},
	}
}

// AddObject parses one candidate file and indexes its exports. Non-ELF
// data, executables, and symbol-less images are skipped silently: lib
// directories legitimately hold linker scripts and text stubs, and the
// builder must never reject a site for unreadable bystander files.
func (b *IndexBuilder) AddObject(path string, data []byte) {
	v, err := b.parser.Parse(data)
	if err != nil || v.Type() != elfimg.TypeDyn {
		return
	}
	b.AddView(path, v)
}

// AddView indexes the exports of an already-parsed view.
func (b *IndexBuilder) AddView(path string, v *elfimg.View) {
	id := int32(len(b.ix.providers))
	b.ix.providers = append(b.ix.providers, provider{
		path: path, cls: v.Class(), mach: v.Machine(),
	})
	used := false
	v.Exports(func(name, version []byte) bool {
		used = true
		n := string(name)
		if _, ok := b.ix.plain[n]; !ok {
			b.ix.symbols++
		}
		b.ix.plain[n] = append(b.ix.plain[n], id)
		if len(version) > 0 {
			vm := b.ix.exact[n]
			if vm == nil {
				vm = map[string][]int32{}
				b.ix.exact[n] = vm
			}
			vm[string(version)] = append(vm[string(version)], id)
		}
		return true
	})
	if !used {
		// No exports: drop the provider again so Libraries() counts only
		// objects that contribute to the symbol surface.
		b.ix.providers = b.ix.providers[:id]
	}
}

// Index returns the accumulated index.
func (b *IndexBuilder) Index() *Index { return b.ix }

// Roots lists the directories whose shared objects form a site's symbol
// surface: LD_LIBRARY_PATH entries (so a loaded MPI stack's libraries
// are indexed), the ld.so.conf default directories, and each installed
// package's /opt/<pkg>/lib — the same universe the survey shards cover.
func Roots(site *sitemodel.Site) []string {
	var roots []string
	seen := map[string]bool{}
	add := func(d string) {
		if d != "" && !seen[d] {
			seen[d] = true
			roots = append(roots, d)
		}
	}
	for _, d := range envmgmt.SplitPathVar(site.Getenv("LD_LIBRARY_PATH")) {
		add(d)
	}
	for _, d := range site.DefaultLibDirs() {
		add(d)
	}
	if entries, err := site.FS().ReadDir("/opt"); err == nil {
		for _, ent := range entries {
			add("/opt/" + ent.Name + "/lib")
		}
	}
	sort.Strings(roots)
	return roots
}

// BuildIndex walks the given roots (Roots(site) when nil) and indexes
// every shared object found. Files appearing under multiple names
// (soname and development symlinks) are indexed once, under their
// resolved path.
func BuildIndex(site *sitemodel.Site, roots []string, stamp uint64) *Index {
	if roots == nil {
		roots = Roots(site)
	}
	b := NewIndexBuilder(site.Name, stamp)
	fs := site.FS()
	for _, root := range roots {
		_ = fs.Walk(root, func(p string, info vfs.FileInfo) error {
			if info.Kind == vfs.KindDir || !strings.Contains(info.Name, ".so") {
				return nil
			}
			real, err := fs.ResolvePath(p)
			if err != nil {
				real = p
			}
			if b.seen[real] {
				return nil
			}
			b.seen[real] = true
			data, err := fs.ReadFileShared(real)
			if err != nil {
				return nil
			}
			b.AddObject(real, data)
			return nil
		})
	}
	return b.ix
}

// lookup classifies one import. The map indexes convert byte slices in
// place (no allocation); provider paths are pre-existing strings.
func (ix *Index) lookup(name, version []byte, cls elfimg.Class, mach elfimg.Machine) (Verdict, string) {
	ids := ix.plain[string(name)]
	if len(ids) == 0 {
		return VerdictMissing, ""
	}
	if len(version) == 0 {
		if id, ok := ix.firstCompatible(ids, cls, mach); ok {
			return VerdictResolved, ix.providers[id].path
		}
		return VerdictClassConflict, ix.providers[ids[0]].path
	}
	if vm := ix.exact[string(name)]; vm != nil {
		if vids := vm[string(version)]; len(vids) > 0 {
			if id, ok := ix.firstCompatible(vids, cls, mach); ok {
				return VerdictResolved, ix.providers[id].path
			}
			return VerdictClassConflict, ix.providers[vids[0]].path
		}
	}
	if _, ok := ix.firstCompatible(ids, cls, mach); ok {
		return VerdictVersionMismatch, ix.providers[ids[0]].path
	}
	return VerdictClassConflict, ix.providers[ids[0]].path
}

func (ix *Index) firstCompatible(ids []int32, cls elfimg.Class, mach elfimg.Machine) (int32, bool) {
	for _, id := range ids {
		p := &ix.providers[id]
		if p.cls == cls && p.mach == mach {
			return id, true
		}
	}
	return 0, false
}

// Provides reports whether a compatible provider exports the named
// symbol (at any version).
func (ix *Index) Provides(name string, cls elfimg.Class, mach elfimg.Machine) bool {
	_, ok := ix.firstCompatible(ix.plain[name], cls, mach)
	return ok
}

// ProvidesAll reports whether every named symbol has a compatible
// provider — the "standardized symbol surface" test behind the
// ABI-standard MPI stack class.
func (ix *Index) ProvidesAll(names []string, cls elfimg.Class, mach elfimg.Machine) bool {
	for _, n := range names {
		if !ix.Provides(n, cls, mach) {
			return false
		}
	}
	return true
}

// Resolve streams per-symbol verdicts for every imported dynamic symbol
// of v, in symbol-table order, until fn returns false. name and version
// alias v's underlying data and must not be retained; provider is the
// exporting object's path ("" for missing symbols). The walk performs
// no allocations — this is the registry-cached hot path the
// BenchmarkABIResolve gate pins at 0 allocs/op.
func (ix *Index) Resolve(v *elfimg.View, fn func(name, version []byte, verdict Verdict, provider string) bool) {
	cls, mach := v.Class(), v.Machine()
	v.Imports(func(sym elfimg.SymbolRef) bool {
		verdict, prov := ix.lookup(sym.Name, sym.Version, cls, mach)
		return fn(sym.Name, sym.Version, verdict, prov)
	})
}
