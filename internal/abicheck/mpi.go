package abicheck

// StandardMPISymbols is the standardized MPI entry-point surface the
// testbed's binaries draw on — the symbol set every conforming
// implementation exports under the MPI ABI standardization proposal
// (arXiv:2308.11214). A stack of any implementation whose libraries
// provide this surface belongs to the "ABI-standard" compatibility
// class: binaries built against one implementation can bind against
// another.
var StandardMPISymbols = []string{
	"MPI_Init",
	"MPI_Comm_rank",
	"MPI_Comm_size",
	"MPI_Send",
	"MPI_Recv",
	"MPI_Finalize",
	"MPI_Allreduce",
	"MPI_Bcast",
	"MPI_Alltoall",
	"MPI_Put",
	"MPI_Win_create",
	"MPI_Type_create_struct",
}
