// Package ldso simulates the Unix dynamic loader's library resolution: the
// breadth-first closure over DT_NEEDED entries, the search order
// (DT_RPATH, LD_LIBRARY_PATH, then the built-in directories), wrong-ELF-class
// rejection, and GNU symbol-version checking (every version a binary
// references must be defined by the object that gets loaded for that
// dependency).
//
// FEAM's `ldd` equivalent and its missing-library discovery are built on
// this resolver, and the execution simulator uses it as the ground truth for
// link-time failures.
package ldso

import (
	"fmt"
	"path"
	"sort"

	"feam/internal/elfimg"
	"feam/internal/vfs"
)

// Options configures a resolution.
type Options struct {
	// FS is the filesystem to search.
	FS *vfs.FS
	// LibraryPath lists LD_LIBRARY_PATH directories in order.
	LibraryPath []string
	// DefaultDirs lists the loader's built-in directories (/lib64, ...).
	DefaultDirs []string
	// ExtraSearchDirs are prepended even before LibraryPath — used by the
	// resolution model to stage bundled library copies.
	ExtraSearchDirs []string
	// Preload lists object paths loaded before the root's dependencies,
	// the LD_PRELOAD mechanism.
	Preload []string
	// CheckSymbols enables eager symbol binding (the LD_BIND_NOW
	// behaviour): every imported symbol of every loaded object must be
	// exported by some object in the closure, with a matching version when
	// the import is version-bound. Lazy binding (the default) only fails
	// when a missing symbol is first called, which is why the paper's
	// metadata-level prediction cannot see these failures up front.
	CheckSymbols bool
	// MaxObjects caps the dependency closure as a loop guard.
	MaxObjects int
}

// Object is one loaded shared object in the closure.
type Object struct {
	// Name is the DT_NEEDED string that requested the object ("root" uses
	// the binary path).
	Name string
	// Path is the filesystem location the loader chose.
	Path string
	// RealPath is Path with symlinks resolved.
	RealPath string
	// File is the parsed ELF metadata.
	File *elfimg.File
	// RequestedBy is the name of the first object that needed this one.
	RequestedBy string
}

// Missing records an unresolvable DT_NEEDED entry.
type Missing struct {
	// Name is the library that could not be found.
	Name string
	// RequestedBy is the object that needed it.
	RequestedBy string
	// WrongClass is true when candidates existed but had the wrong ELF
	// class/machine ("wrong ELF class: ELFCLASS32" style failures).
	WrongClass bool
}

func (m Missing) String() string {
	if m.WrongClass {
		return fmt.Sprintf("%s => wrong ELF class (needed by %s)", m.Name, m.RequestedBy)
	}
	return fmt.Sprintf("%s => not found (needed by %s)", m.Name, m.RequestedBy)
}

// UndefinedSymbol records an import no loaded object exports (eager-binding
// failures: "undefined symbol: MPI_Win_create").
type UndefinedSymbol struct {
	// Symbol is the unresolved name (with version when bound).
	Symbol string
	// RequestedBy is the object importing it.
	RequestedBy string
}

func (u UndefinedSymbol) String() string {
	return fmt.Sprintf("undefined symbol: %s (needed by %s)", u.Symbol, u.RequestedBy)
}

// VersionError records an unsatisfied symbol-version reference, the
// "version `GLIBC_2.12' not found" class of failure.
type VersionError struct {
	// Version is the referenced version name.
	Version string
	// Library is the dependency expected to define it.
	Library string
	// LibraryPath is where that dependency was loaded from ("" if missing).
	LibraryPath string
	// RequestedBy is the object carrying the reference.
	RequestedBy string
}

func (v VersionError) String() string {
	return fmt.Sprintf("%s: version `%s' not found (required by %s)", v.Library, v.Version, v.RequestedBy)
}

// Resolution is the result of resolving a binary's dependency closure.
type Resolution struct {
	// Root is the binary being resolved.
	Root *Object
	// Objects maps NEEDED name to the loaded object, excluding the root.
	Objects map[string]*Object
	// Order lists NEEDED names in load (breadth-first) order.
	Order []string
	// Missing lists unresolvable dependencies.
	Missing []Missing
	// VersionErrors lists unsatisfied version references.
	VersionErrors []VersionError
	// UndefinedSymbols lists eager-binding failures (only populated when
	// Options.CheckSymbols is set).
	UndefinedSymbols []UndefinedSymbol
}

// OK reports whether the loader would start the program: every dependency
// found with every referenced version defined (and, under eager binding,
// every symbol resolvable).
func (r *Resolution) OK() bool {
	return len(r.Missing) == 0 && len(r.VersionErrors) == 0 && len(r.UndefinedSymbols) == 0
}

// MissingNames returns the sorted set of missing library names.
func (r *Resolution) MissingNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range r.Missing {
		if !seen[m.Name] {
			seen[m.Name] = true
			out = append(out, m.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Summary renders an ldd-style report.
func (r *Resolution) Summary() string {
	out := ""
	for _, name := range r.Order {
		o := r.Objects[name]
		out += fmt.Sprintf("\t%s => %s\n", name, o.Path)
	}
	for _, m := range r.Missing {
		out += fmt.Sprintf("\t%s => not found\n", m.Name)
	}
	for _, v := range r.VersionErrors {
		out += "\t" + v.String() + "\n"
	}
	return out
}

// ResolveBytes resolves a binary supplied as raw ELF bytes (the typical case
// for a migrated application binary that may not live on the site
// filesystem).
func ResolveBytes(bin []byte, name string, opts Options) (*Resolution, error) {
	f, err := elfimg.Parse(bin)
	if err != nil {
		return nil, err
	}
	return resolve(&Object{Name: name, Path: name, RealPath: name, File: f}, opts)
}

// ResolveFile resolves a binary already present on the site filesystem.
func ResolveFile(p string, opts Options) (*Resolution, error) {
	data, err := opts.FS.ReadFileShared(p)
	if err != nil {
		return nil, err
	}
	f, err := elfimg.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("ldso: %s: %v", p, err)
	}
	rp, err := opts.FS.ResolvePath(p)
	if err != nil {
		rp = p
	}
	return resolve(&Object{Name: p, Path: p, RealPath: rp, File: f}, opts)
}

func resolve(root *Object, opts Options) (*Resolution, error) {
	if opts.FS == nil {
		return nil, fmt.Errorf("ldso: no filesystem")
	}
	maxObjects := opts.MaxObjects
	if maxObjects == 0 {
		maxObjects = 512
	}
	res := &Resolution{Root: root, Objects: map[string]*Object{}}

	type request struct {
		name string
		by   *Object
	}
	var queue []request
	seen := map[string]bool{}
	missingSeen := map[string]bool{}

	// LD_PRELOAD objects load first; their own dependencies join the
	// closure like anything else.
	for _, p := range opts.Preload {
		data, err := opts.FS.ReadFileShared(p)
		if err != nil {
			res.Missing = append(res.Missing, Missing{Name: p, RequestedBy: "LD_PRELOAD"})
			continue
		}
		f, err := elfimg.Parse(data)
		if err != nil || f.Class != root.File.Class || f.Machine != root.File.Machine {
			res.Missing = append(res.Missing, Missing{Name: p, RequestedBy: "LD_PRELOAD", WrongClass: err == nil})
			continue
		}
		name := f.Soname
		if name == "" {
			name = p
		}
		if seen[name] {
			continue
		}
		seen[name] = true
		obj := &Object{Name: name, Path: p, RealPath: p, File: f, RequestedBy: "LD_PRELOAD"}
		res.Objects[name] = obj
		res.Order = append(res.Order, name)
		for _, n := range f.Needed {
			queue = append(queue, request{n, obj})
		}
	}

	for _, n := range root.File.Needed {
		queue = append(queue, request{n, root})
	}

	for len(queue) > 0 {
		req := queue[0]
		queue = queue[1:]
		if seen[req.name] {
			continue
		}
		seen[req.name] = true
		if len(res.Objects) >= maxObjects {
			return nil, fmt.Errorf("ldso: dependency closure exceeds %d objects", maxObjects)
		}
		obj, wrongClass := locate(req.name, req.by, root, opts)
		if obj == nil {
			if !missingSeen[req.name] {
				missingSeen[req.name] = true
				res.Missing = append(res.Missing, Missing{
					Name: req.name, RequestedBy: req.by.Name, WrongClass: wrongClass,
				})
			}
			continue
		}
		obj.RequestedBy = req.by.Name
		res.Objects[req.name] = obj
		res.Order = append(res.Order, req.name)
		for _, n := range obj.File.Needed {
			if !seen[n] {
				queue = append(queue, request{n, obj})
			}
		}
	}

	checkVersions(res)
	if opts.CheckSymbols {
		checkSymbols(res)
	}
	return res, nil
}

// checkSymbols performs eager symbol binding over the closure: every import
// must be satisfied by an export somewhere in the loaded set. Version-bound
// imports require the same (name, version) export; unversioned imports
// accept any export of the name.
func checkSymbols(res *Resolution) {
	type versioned struct{ name, version string }
	plain := map[string]bool{}
	exact := map[versioned]bool{}
	record := func(o *Object) {
		for _, ex := range o.File.Exports {
			plain[ex.Name] = true
			exact[versioned{ex.Name, ex.Version}] = true
		}
	}
	all := make([]*Object, 0, len(res.Objects)+1)
	all = append(all, res.Root)
	for _, name := range res.Order {
		all = append(all, res.Objects[name])
	}
	for _, o := range all {
		record(o)
	}
	for _, o := range all {
		for _, im := range o.File.Imports {
			if im.Version == "" {
				if !plain[im.Name] {
					res.UndefinedSymbols = append(res.UndefinedSymbols, UndefinedSymbol{
						Symbol: im.Name, RequestedBy: o.Name,
					})
				}
				continue
			}
			// If the providing library is missing entirely, the missing-
			// library report already covers it.
			if _, loaded := res.Objects[im.Library]; !loaded && im.Library != "" {
				continue
			}
			if !exact[versioned{im.Name, im.Version}] {
				res.UndefinedSymbols = append(res.UndefinedSymbols, UndefinedSymbol{
					Symbol: im.Name + "@" + im.Version, RequestedBy: o.Name,
				})
			}
		}
	}
}

// locate searches for a NEEDED name using the loader's directory order and
// class filtering. It returns nil when nothing usable is found; wrongClass
// reports whether a candidate with the wrong ELF class was encountered.
func locate(name string, requester, root *Object, opts Options) (obj *Object, wrongClass bool) {
	var dirs []string
	dirs = append(dirs, opts.ExtraSearchDirs...)
	// DT_RPATH of the requesting object, then of the root (the historical
	// inheritance rule FEAM-era systems used). A DT_RUNPATH on the
	// requester disables its RPATH and is searched after LD_LIBRARY_PATH,
	// without inheritance — the modern semantics.
	if requester.File.RunPath == "" {
		if rp := requester.File.RPath; rp != "" {
			dirs = append(dirs, rp)
		}
		if rp := root.File.RPath; rp != "" && requester != root && root.File.RunPath == "" {
			dirs = append(dirs, rp)
		}
	}
	dirs = append(dirs, opts.LibraryPath...)
	if rp := requester.File.RunPath; rp != "" {
		dirs = append(dirs, rp)
	}
	dirs = append(dirs, opts.DefaultDirs...)

	for _, dir := range dirs {
		p := path.Join(dir, name)
		data, err := opts.FS.ReadFileShared(p)
		if err != nil {
			continue
		}
		f, err := elfimg.Parse(data)
		if err != nil {
			continue // not an ELF (linker script, text stub): keep searching
		}
		if f.Class != root.File.Class || f.Machine != root.File.Machine {
			wrongClass = true
			continue
		}
		rp, err := opts.FS.ResolvePath(p)
		if err != nil {
			rp = p
		}
		return &Object{Name: name, Path: p, RealPath: rp, File: f}, false
	}
	return nil, wrongClass
}

// checkVersions verifies every symbol-version reference in the closure
// against the version definitions of the loaded objects.
func checkVersions(res *Resolution) {
	all := make([]*Object, 0, len(res.Objects)+1)
	all = append(all, res.Root)
	for _, name := range res.Order {
		all = append(all, res.Objects[name])
	}
	for _, o := range all {
		for _, vn := range o.File.VerNeeds {
			dep, ok := res.Objects[vn.File]
			if !ok {
				// The dependency itself is missing (already reported) or the
				// reference targets a library outside the NEEDED set; the
				// loader reports the version failure only when the file was
				// expected, so skip silently here.
				continue
			}
			defs := map[string]bool{}
			for _, vd := range dep.File.VerDefs {
				defs[vd] = true
			}
			for _, want := range vn.Versions {
				if !defs[want] {
					res.VersionErrors = append(res.VersionErrors, VersionError{
						Version: want, Library: vn.File, LibraryPath: dep.Path,
						RequestedBy: o.Name,
					})
				}
			}
		}
	}
}
