package ldso

import (
	"strings"
	"testing"

	"feam/internal/elfimg"
	"feam/internal/libver"
	"feam/internal/sitemodel"
	"feam/internal/vfs"
)

// buildSite creates a 64-bit site with a glibc 2.5 C library installed.
func buildSite(t *testing.T) *sitemodel.Site {
	t.Helper()
	s := sitemodel.New("test",
		sitemodel.Arch{Machine: elfimg.EMX8664, Class: elfimg.Class64, CPUName: "Xeon", FeatureLevel: 1},
		sitemodel.OSInfo{Distro: "CentOS", Version: "5.6", Kernel: "2.6.18", ReleaseFile: "/etc/redhat-release"},
		libver.V(2, 5))
	if err := s.InstallCLibrary(); err != nil {
		t.Fatal(err)
	}
	return s
}

func optsFor(s *sitemodel.Site) Options {
	return Options{
		FS:          s.FS(),
		LibraryPath: nil,
		DefaultDirs: s.DefaultLibDirs(),
	}
}

// appBinary builds an executable requiring libc and an extra set of libs.
func appBinary(needed []string, verNeeds []elfimg.VerNeed) []byte {
	return elfimg.MustBuild(elfimg.Spec{
		Class:    elfimg.Class64,
		Machine:  elfimg.EMX8664,
		Type:     elfimg.TypeExec,
		Interp:   "/lib64/ld-linux-x86-64.so.2",
		Needed:   needed,
		VerNeeds: verNeeds,
		TextSize: 1024,
	})
}

func TestResolveSimpleSuccess(t *testing.T) {
	s := buildSite(t)
	bin := appBinary([]string{"libm.so.6", "libc.so.6"},
		[]elfimg.VerNeed{{File: "libc.so.6", Versions: []string{"GLIBC_2.2.5"}}})
	res, err := ResolveBytes(bin, "a.out", optsFor(s))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("resolution failed: %s", res.Summary())
	}
	if len(res.Order) != 2 {
		t.Errorf("Order = %v", res.Order)
	}
	if res.Objects["libc.so.6"].RealPath != "/lib64/libc-2.5.so" {
		t.Errorf("libc path = %q", res.Objects["libc.so.6"].RealPath)
	}
}

func TestResolveMissingLibrary(t *testing.T) {
	s := buildSite(t)
	bin := appBinary([]string{"libgfortran.so.1", "libc.so.6"}, nil)
	res, err := ResolveBytes(bin, "bt.A.4", optsFor(s))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("expected failure")
	}
	if len(res.Missing) != 1 || res.Missing[0].Name != "libgfortran.so.1" {
		t.Errorf("Missing = %v", res.Missing)
	}
	if res.Missing[0].RequestedBy != "bt.A.4" {
		t.Errorf("RequestedBy = %q", res.Missing[0].RequestedBy)
	}
	if got := res.MissingNames(); len(got) != 1 || got[0] != "libgfortran.so.1" {
		t.Errorf("MissingNames = %v", got)
	}
	if !strings.Contains(res.Summary(), "libgfortran.so.1 => not found") {
		t.Errorf("Summary = %q", res.Summary())
	}
}

func TestResolveTransitiveDependencies(t *testing.T) {
	s := buildSite(t)
	// libmpi depends on libopen-rte which depends on libopen-pal.
	if _, err := s.InstallLibrary("/usr/lib64", sitemodel.Library{
		FileName: "libopen-pal.so.0.0.0", Needed: []string{"libc.so.6"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstallLibrary("/usr/lib64", sitemodel.Library{
		FileName: "libopen-rte.so.0.0.0", Needed: []string{"libopen-pal.so.0", "libc.so.6"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstallLibrary("/usr/lib64", sitemodel.Library{
		FileName: "libmpi.so.0.0.2", Needed: []string{"libopen-rte.so.0", "libm.so.6", "libc.so.6"},
	}); err != nil {
		t.Fatal(err)
	}
	bin := appBinary([]string{"libmpi.so.0", "libc.so.6"}, nil)
	res, err := ResolveBytes(bin, "cg.B.8", optsFor(s))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("resolution failed: %s", res.Summary())
	}
	for _, want := range []string{"libmpi.so.0", "libopen-rte.so.0", "libopen-pal.so.0", "libm.so.6", "libc.so.6"} {
		if res.Objects[want] == nil {
			t.Errorf("closure missing %s (order %v)", want, res.Order)
		}
	}
	// Transitive missing: remove libopen-pal and the closure must report it.
	if err := s.FS().Remove("/usr/lib64/libopen-pal.so.0"); err != nil {
		t.Fatal(err)
	}
	if err := s.FS().Remove("/usr/lib64/libopen-pal.so.0.0.0"); err != nil {
		t.Fatal(err)
	}
	res, err = ResolveBytes(bin, "cg.B.8", optsFor(s))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("expected transitive failure")
	}
	if res.Missing[0].Name != "libopen-pal.so.0" || res.Missing[0].RequestedBy != "libopen-rte.so.0" {
		t.Errorf("Missing = %v", res.Missing)
	}
}

func TestLibraryPathPrecedence(t *testing.T) {
	s := buildSite(t)
	// Two versions of the same soname: LD_LIBRARY_PATH one must win.
	if _, err := s.InstallLibrary("/usr/lib64", sitemodel.Library{FileName: "libx.so.1.0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstallLibrary("/opt/custom/lib", sitemodel.Library{FileName: "libx.so.1.9"}); err != nil {
		t.Fatal(err)
	}
	bin := appBinary([]string{"libx.so.1", "libc.so.6"}, nil)
	opts := optsFor(s)
	opts.LibraryPath = []string{"/opt/custom/lib"}
	res, err := ResolveBytes(bin, "a.out", opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Objects["libx.so.1"].RealPath; got != "/opt/custom/lib/libx.so.1.9" {
		t.Errorf("libx resolved to %q", got)
	}
	// ExtraSearchDirs beat LD_LIBRARY_PATH (FEAM's staged copies).
	if _, err := s.InstallLibrary("/feam/staged", sitemodel.Library{FileName: "libx.so.1.5"}); err != nil {
		t.Fatal(err)
	}
	opts.ExtraSearchDirs = []string{"/feam/staged"}
	res, err = ResolveBytes(bin, "a.out", opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Objects["libx.so.1"].RealPath; got != "/feam/staged/libx.so.1.5" {
		t.Errorf("libx resolved to %q", got)
	}
}

func TestRPathSearch(t *testing.T) {
	s := buildSite(t)
	if _, err := s.InstallLibrary("/opt/app/lib", sitemodel.Library{FileName: "libprivate.so.2.0"}); err != nil {
		t.Fatal(err)
	}
	bin := elfimg.MustBuild(elfimg.Spec{
		Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeExec,
		Interp: "/lib64/ld-linux-x86-64.so.2",
		Needed: []string{"libprivate.so.2", "libc.so.6"},
		RPath:  "/opt/app/lib",
	})
	res, err := ResolveBytes(bin, "app", optsFor(s))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("rpath resolution failed: %s", res.Summary())
	}
}

func TestWrongClassRejected(t *testing.T) {
	s := buildSite(t)
	// A 32-bit libz where a 64-bit binary looks for it.
	if _, err := s.InstallLibrary("/usr/lib64", sitemodel.Library{
		FileName: "libz.so.1.2.3", Class: elfimg.Class32, Machine: elfimg.EM386,
	}); err != nil {
		t.Fatal(err)
	}
	bin := appBinary([]string{"libz.so.1", "libc.so.6"}, nil)
	res, err := ResolveBytes(bin, "a.out", optsFor(s))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("expected wrong-class failure")
	}
	if !res.Missing[0].WrongClass {
		t.Errorf("Missing = %+v", res.Missing[0])
	}
	if !strings.Contains(res.Missing[0].String(), "wrong ELF class") {
		t.Errorf("String = %q", res.Missing[0].String())
	}
	// A correct-class copy later in the path is chosen instead.
	if _, err := s.InstallLibrary("/usr/lib", sitemodel.Library{FileName: "libz.so.1.2.3"}); err != nil {
		t.Fatal(err)
	}
	res, err = ResolveBytes(bin, "a.out", optsFor(s))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("fallback to correct class failed: %s", res.Summary())
	}
}

func TestVersionCheckFailure(t *testing.T) {
	s := buildSite(t) // glibc 2.5
	bin := appBinary([]string{"libc.so.6"},
		[]elfimg.VerNeed{{File: "libc.so.6", Versions: []string{"GLIBC_2.2.5", "GLIBC_2.12"}}})
	res, err := ResolveBytes(bin, "leslie3d", optsFor(s))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("expected version failure")
	}
	if len(res.VersionErrors) != 1 {
		t.Fatalf("VersionErrors = %v", res.VersionErrors)
	}
	ve := res.VersionErrors[0]
	if ve.Version != "GLIBC_2.12" || ve.Library != "libc.so.6" || ve.RequestedBy != "leslie3d" {
		t.Errorf("VersionError = %+v", ve)
	}
	if !strings.Contains(ve.String(), "version `GLIBC_2.12' not found") {
		t.Errorf("String = %q", ve.String())
	}
}

func TestVersionCheckInDependency(t *testing.T) {
	s := buildSite(t)
	// A library that itself requires a newer glibc than installed.
	if _, err := s.InstallLibrary("/usr/lib64", sitemodel.Library{
		FileName: "libhdf5.so.6.0.0",
		Needed:   []string{"libc.so.6"},
		VerNeeds: []elfimg.VerNeed{{File: "libc.so.6", Versions: []string{"GLIBC_2.7"}}},
	}); err != nil {
		t.Fatal(err)
	}
	bin := appBinary([]string{"libhdf5.so.6", "libc.so.6"}, nil)
	res, err := ResolveBytes(bin, "app", optsFor(s))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("expected dependency version failure")
	}
	if res.VersionErrors[0].RequestedBy != "libhdf5.so.6" {
		t.Errorf("VersionErrors = %v", res.VersionErrors)
	}
}

func TestResolveFile(t *testing.T) {
	s := buildSite(t)
	bin := appBinary([]string{"libc.so.6"}, nil)
	if err := s.FS().WriteFile("/home/user/a.out", bin); err != nil {
		t.Fatal(err)
	}
	res, err := ResolveFile("/home/user/a.out", optsFor(s))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("resolution failed: %s", res.Summary())
	}
	if _, err := ResolveFile("/nope", optsFor(s)); err == nil {
		t.Error("missing file should error")
	}
	if err := s.FS().WriteString("/home/user/script.sh", "#!/bin/sh\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := ResolveFile("/home/user/script.sh", optsFor(s)); err == nil {
		t.Error("non-ELF should error")
	}
}

func TestResolveCycleTerminates(t *testing.T) {
	s := buildSite(t)
	// Mutually dependent libraries must not loop.
	if _, err := s.InstallLibrary("/usr/lib64", sitemodel.Library{
		FileName: "liba.so.1.0", Needed: []string{"libb.so.1", "libc.so.6"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstallLibrary("/usr/lib64", sitemodel.Library{
		FileName: "libb.so.1.0", Needed: []string{"liba.so.1", "libc.so.6"},
	}); err != nil {
		t.Fatal(err)
	}
	bin := appBinary([]string{"liba.so.1", "libc.so.6"}, nil)
	res, err := ResolveBytes(bin, "a.out", optsFor(s))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("cyclic deps failed: %s", res.Summary())
	}
}

func TestResolveNoFS(t *testing.T) {
	bin := appBinary(nil, nil)
	if _, err := ResolveBytes(bin, "a.out", Options{}); err == nil {
		t.Error("expected error without filesystem")
	}
}

func TestNonELFCandidateSkipped(t *testing.T) {
	s := buildSite(t)
	// A linker-script style text file with a library name is skipped and
	// the search continues (GNU libc ships libc.so as a text file).
	if err := s.FS().WriteString("/usr/lib64/liby.so.1", "GROUP ( /lib64/liby.so.1 )"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstallLibrary("/usr/lib", sitemodel.Library{FileName: "liby.so.1.0"}); err != nil {
		t.Fatal(err)
	}
	bin := appBinary([]string{"liby.so.1", "libc.so.6"}, nil)
	res, err := ResolveBytes(bin, "a.out", optsFor(s))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("text candidate not skipped: %s", res.Summary())
	}
	if got := res.Objects["liby.so.1"].RealPath; got != "/usr/lib/liby.so.1.0" {
		t.Errorf("liby resolved to %q", got)
	}
}

func TestVFSBackedOnly(t *testing.T) {
	// Sanity: resolver operates purely on the provided FS.
	fs := vfs.New()
	bin := appBinary([]string{"libc.so.6"}, nil)
	res, err := ResolveBytes(bin, "a.out", Options{FS: fs, DefaultDirs: []string{"/lib64"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Error("empty filesystem cannot satisfy libc")
	}
}
