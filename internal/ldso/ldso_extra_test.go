package ldso

import (
	"strings"
	"testing"

	"feam/internal/elfimg"
	"feam/internal/sitemodel"
)

func TestRunPathSearchedAfterLibraryPath(t *testing.T) {
	s := buildSite(t)
	// Same soname in the RUNPATH dir and in LD_LIBRARY_PATH: the
	// LD_LIBRARY_PATH copy must win (unlike RPATH).
	if _, err := s.InstallLibrary("/opt/app/lib", sitemodel.Library{FileName: "libq.so.1.0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstallLibrary("/override/lib", sitemodel.Library{FileName: "libq.so.1.9"}); err != nil {
		t.Fatal(err)
	}
	bin := elfimg.MustBuild(elfimg.Spec{
		Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeExec,
		Interp:  "/lib64/ld-linux-x86-64.so.2",
		Needed:  []string{"libq.so.1", "libc.so.6"},
		RunPath: "/opt/app/lib",
	})
	opts := optsFor(s)
	opts.LibraryPath = []string{"/override/lib"}
	res, err := ResolveBytes(bin, "app", opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Objects["libq.so.1"].RealPath; got != "/override/lib/libq.so.1.9" {
		t.Errorf("RUNPATH beat LD_LIBRARY_PATH: %q", got)
	}
	// Without LD_LIBRARY_PATH the RUNPATH copy is found.
	opts.LibraryPath = nil
	res, err = ResolveBytes(bin, "app", opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Objects["libq.so.1"].RealPath; got != "/opt/app/lib/libq.so.1.0" {
		t.Errorf("RUNPATH lookup failed: %q", got)
	}
}

func TestRunPathDisablesRPath(t *testing.T) {
	s := buildSite(t)
	if _, err := s.InstallLibrary("/rpath/lib", sitemodel.Library{FileName: "libr.so.1.0"}); err != nil {
		t.Fatal(err)
	}
	// Binary with both RPATH (pointing at the copy) and RUNPATH (pointing
	// nowhere useful): RPATH must be ignored.
	bin := elfimg.MustBuild(elfimg.Spec{
		Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeExec,
		Interp:  "/lib64/ld-linux-x86-64.so.2",
		Needed:  []string{"libr.so.1", "libc.so.6"},
		RPath:   "/rpath/lib",
		RunPath: "/elsewhere",
	})
	res, err := ResolveBytes(bin, "app", optsFor(s))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Error("RPATH should have been disabled by RUNPATH")
	}
}

func TestRunPathNotInherited(t *testing.T) {
	s := buildSite(t)
	// libdep needs libsub; libsub lives only in the ROOT's runpath dir.
	// RUNPATH is not inherited, so resolution of libsub must fail.
	if _, err := s.InstallLibrary("/usr/lib64", sitemodel.Library{
		FileName: "libdep.so.1.0", Needed: []string{"libsub.so.1", "libc.so.6"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstallLibrary("/approot/lib", sitemodel.Library{FileName: "libsub.so.1.0"}); err != nil {
		t.Fatal(err)
	}
	bin := elfimg.MustBuild(elfimg.Spec{
		Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeExec,
		Interp:  "/lib64/ld-linux-x86-64.so.2",
		Needed:  []string{"libdep.so.1", "libc.so.6"},
		RunPath: "/approot/lib",
	})
	res, err := ResolveBytes(bin, "app", optsFor(s))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Error("RUNPATH leaked to a dependency")
	}
	if len(res.Missing) != 1 || res.Missing[0].Name != "libsub.so.1" {
		t.Errorf("Missing = %v", res.Missing)
	}
}

func TestPreload(t *testing.T) {
	s := buildSite(t)
	if _, err := s.InstallLibrary("/opt/trace/lib", sitemodel.Library{
		FileName: "libtrace.so.1.0", Needed: []string{"libdl.so.2", "libc.so.6"},
	}); err != nil {
		t.Fatal(err)
	}
	bin := appBinary([]string{"libc.so.6"}, nil)
	opts := optsFor(s)
	opts.Preload = []string{"/opt/trace/lib/libtrace.so.1"}
	res, err := ResolveBytes(bin, "app", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("preload resolution failed: %s", res.Summary())
	}
	// The preloaded object loads first and its deps join the closure.
	if res.Order[0] != "libtrace.so.1" {
		t.Errorf("Order = %v", res.Order)
	}
	if res.Objects["libdl.so.2"] == nil {
		t.Error("preload dependency not resolved")
	}
	if res.Objects["libtrace.so.1"].RequestedBy != "LD_PRELOAD" {
		t.Errorf("RequestedBy = %q", res.Objects["libtrace.so.1"].RequestedBy)
	}
	// A missing preload object is reported.
	opts.Preload = []string{"/nope/libghost.so"}
	res, err = ResolveBytes(bin, "app", opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || res.Missing[0].RequestedBy != "LD_PRELOAD" {
		t.Errorf("missing preload not reported: %+v", res.Missing)
	}
}

func TestCheckSymbolsEagerBinding(t *testing.T) {
	s := buildSite(t)
	// A library exporting a versioned symbol set.
	if _, err := s.InstallLibrary("/usr/lib64", sitemodel.Library{
		FileName: "libmpi.so.0.0.3",
		Needed:   []string{"libc.so.6"},
		VerDefs:  []string{"libmpi.so.0"},
		Exports: []elfimg.ExportedSymbol{
			{Name: "MPI_Init"}, {Name: "MPI_Send"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	// Binary importing one exported and one missing symbol.
	bin := elfimg.MustBuild(elfimg.Spec{
		Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeExec,
		Interp: "/lib64/ld-linux-x86-64.so.2",
		Needed: []string{"libmpi.so.0", "libc.so.6"},
		Imports: []elfimg.ImportedSymbol{
			{Name: "MPI_Init"},
			{Name: "MPI_Win_create"}, // not exported by this Open MPI build
		},
	})
	// Lazy binding (default): loads fine.
	res, err := ResolveBytes(bin, "app", optsFor(s))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("lazy binding failed: %s", res.Summary())
	}
	// Eager binding: the missing entry point surfaces.
	opts := optsFor(s)
	opts.CheckSymbols = true
	res, err = ResolveBytes(bin, "app", opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("eager binding missed the undefined symbol")
	}
	if len(res.UndefinedSymbols) != 1 || res.UndefinedSymbols[0].Symbol != "MPI_Win_create" {
		t.Errorf("UndefinedSymbols = %+v", res.UndefinedSymbols)
	}
	if !strings.Contains(res.UndefinedSymbols[0].String(), "undefined symbol") {
		t.Errorf("String = %q", res.UndefinedSymbols[0].String())
	}
}

func TestCheckSymbolsVersionBound(t *testing.T) {
	s := buildSite(t) // glibc 2.5: exports printf@GLIBC_2.0 and memcpy at every ladder entry
	// printf@GLIBC_2.0 and memcpy@GLIBC_2.3.4 resolve (historical
	// compatibility symbols persist); qsort@GLIBC_2.3.4 does not — the
	// version exists, the entry point does not.
	bin := elfimg.MustBuild(elfimg.Spec{
		Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeExec,
		Interp: "/lib64/ld-linux-x86-64.so.2",
		Needed: []string{"libc.so.6"},
		VerNeeds: []elfimg.VerNeed{
			{File: "libc.so.6", Versions: []string{"GLIBC_2.0", "GLIBC_2.3.4"}},
		},
		Imports: []elfimg.ImportedSymbol{
			{Name: "printf", Version: "GLIBC_2.0", Library: "libc.so.6"},
			{Name: "memcpy", Version: "GLIBC_2.3.4", Library: "libc.so.6"},
			{Name: "qsort", Version: "GLIBC_2.3.4", Library: "libc.so.6"},
		},
	})
	opts := optsFor(s)
	opts.CheckSymbols = true
	res, err := ResolveBytes(bin, "app", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UndefinedSymbols) != 1 {
		t.Fatalf("UndefinedSymbols = %+v", res.UndefinedSymbols)
	}
	if !strings.HasPrefix(res.UndefinedSymbols[0].Symbol, "qsort@") {
		t.Errorf("unexpected undefined symbol: %+v", res.UndefinedSymbols[0])
	}
}

// TestResolutionDeterministic: identical inputs produce identical
// resolutions — load order, chosen paths, and failure lists.
func TestResolutionDeterministic(t *testing.T) {
	s := buildSite(t)
	if _, err := s.InstallLibrary("/usr/lib64", sitemodel.Library{
		FileName: "libalpha.so.1.0", Needed: []string{"libbeta.so.1", "libc.so.6"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstallLibrary("/usr/lib64", sitemodel.Library{
		FileName: "libbeta.so.1.0", Needed: []string{"libm.so.6", "libc.so.6"},
	}); err != nil {
		t.Fatal(err)
	}
	bin := appBinary([]string{"libalpha.so.1", "libmissing.so.9", "libc.so.6"}, nil)
	opts := optsFor(s)
	var firstOrder []string
	var firstSummary string
	for trial := 0; trial < 20; trial++ {
		res, err := ResolveBytes(bin, "app", opts)
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			firstOrder = res.Order
			firstSummary = res.Summary()
			continue
		}
		if len(res.Order) != len(firstOrder) {
			t.Fatalf("order length changed: %v vs %v", res.Order, firstOrder)
		}
		for i := range res.Order {
			if res.Order[i] != firstOrder[i] {
				t.Fatalf("order changed at %d: %v vs %v", i, res.Order, firstOrder)
			}
		}
		if res.Summary() != firstSummary {
			t.Fatal("summary changed between runs")
		}
	}
}
