// Package batch simulates the HPC resource-manager layer FEAM submits its
// probe jobs through: PBS, SGE, and SLURM submission-script formats, queue
// wait-time modelling (including the short debug queues the paper recommends
// for FEAM runs), CPU-hour accounting, and the spaced retry policy the
// evaluation used (five attempts, spread out to dodge transient overload).
//
// FEAM itself only requires the user to supply one serial and one parallel
// submission script per site — the single piece of site knowledge the paper
// does not automate — so this package also provides the %CMD% placeholder
// substitution FEAM performs on those scripts.
package batch

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Manager is a resource-manager flavor.
type Manager int

const (
	PBS Manager = iota
	SGE
	SLURM
)

func (m Manager) String() string {
	switch m {
	case PBS:
		return "PBS"
	case SGE:
		return "SGE"
	case SLURM:
		return "SLURM"
	default:
		return fmt.Sprintf("Manager(%d)", int(m))
	}
}

// SubmitCommand returns the manager's submission executable.
func (m Manager) SubmitCommand() string {
	switch m {
	case PBS:
		return "qsub"
	case SGE:
		return "qsub"
	case SLURM:
		return "sbatch"
	default:
		return "qsub"
	}
}

// ScriptSpec describes a submission script.
type ScriptSpec struct {
	Manager  Manager
	JobName  string
	Queue    string
	Nodes    int
	Tasks    int
	WallTime time.Duration
	// Command is the job payload; "%CMD%" in templates is replaced by it.
	Command string
}

// CmdPlaceholder is the token FEAM substitutes into user-provided templates.
const CmdPlaceholder = "%CMD%"

// Generate renders the submission script in the manager's native directive
// syntax.
func Generate(spec ScriptSpec) string {
	var b strings.Builder
	b.WriteString("#!/bin/sh\n")
	wall := fmtWall(spec.WallTime)
	switch spec.Manager {
	case PBS:
		fmt.Fprintf(&b, "#PBS -N %s\n", spec.JobName)
		if spec.Queue != "" {
			fmt.Fprintf(&b, "#PBS -q %s\n", spec.Queue)
		}
		fmt.Fprintf(&b, "#PBS -l nodes=%d:ppn=%d\n", spec.Nodes, spec.Tasks)
		fmt.Fprintf(&b, "#PBS -l walltime=%s\n", wall)
	case SGE:
		fmt.Fprintf(&b, "#$ -N %s\n", spec.JobName)
		if spec.Queue != "" {
			fmt.Fprintf(&b, "#$ -q %s\n", spec.Queue)
		}
		fmt.Fprintf(&b, "#$ -pe mpi %d\n", spec.Nodes*spec.Tasks)
		fmt.Fprintf(&b, "#$ -l h_rt=%s\n", wall)
	case SLURM:
		fmt.Fprintf(&b, "#SBATCH --job-name=%s\n", spec.JobName)
		if spec.Queue != "" {
			fmt.Fprintf(&b, "#SBATCH --partition=%s\n", spec.Queue)
		}
		fmt.Fprintf(&b, "#SBATCH --nodes=%d\n", spec.Nodes)
		fmt.Fprintf(&b, "#SBATCH --ntasks-per-node=%d\n", spec.Tasks)
		fmt.Fprintf(&b, "#SBATCH --time=%s\n", wall)
	}
	b.WriteString(spec.Command)
	b.WriteString("\n")
	return b.String()
}

func fmtWall(d time.Duration) string {
	total := int(d.Seconds())
	return fmt.Sprintf("%02d:%02d:%02d", total/3600, (total/60)%60, total%60)
}

// Parse recovers a ScriptSpec from a submission script. Unknown directive
// lines are ignored; the last non-directive, non-comment line is taken as
// the command.
func Parse(text string) (ScriptSpec, error) {
	spec := ScriptSpec{Nodes: 1, Tasks: 1}
	sawDirective := false
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "#PBS "):
			spec.Manager = PBS
			sawDirective = true
			parsePBS(&spec, strings.TrimPrefix(trimmed, "#PBS "))
		case strings.HasPrefix(trimmed, "#$ "):
			spec.Manager = SGE
			sawDirective = true
			parseSGE(&spec, strings.TrimPrefix(trimmed, "#$ "))
		case strings.HasPrefix(trimmed, "#SBATCH "):
			spec.Manager = SLURM
			sawDirective = true
			parseSLURM(&spec, strings.TrimPrefix(trimmed, "#SBATCH "))
		case trimmed == "" || strings.HasPrefix(trimmed, "#"):
			// comment or shebang
		default:
			spec.Command = trimmed
		}
	}
	if !sawDirective {
		return spec, fmt.Errorf("batch: no recognizable scheduler directives")
	}
	return spec, nil
}

func parsePBS(spec *ScriptSpec, rest string) {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return
	}
	switch fields[0] {
	case "-N":
		spec.JobName = fields[1]
	case "-q":
		spec.Queue = fields[1]
	case "-l":
		for _, kv := range strings.Split(fields[1], ",") {
			if strings.HasPrefix(kv, "walltime=") {
				spec.WallTime = parseWall(strings.TrimPrefix(kv, "walltime="))
			}
			if strings.HasPrefix(kv, "nodes=") {
				parts := strings.Split(strings.TrimPrefix(kv, "nodes="), ":")
				spec.Nodes = atoiDefault(parts[0], 1)
				for _, p := range parts[1:] {
					if strings.HasPrefix(p, "ppn=") {
						spec.Tasks = atoiDefault(strings.TrimPrefix(p, "ppn="), 1)
					}
				}
			}
		}
	}
}

func parseSGE(spec *ScriptSpec, rest string) {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return
	}
	switch fields[0] {
	case "-N":
		spec.JobName = fields[1]
	case "-q":
		spec.Queue = fields[1]
	case "-pe":
		if len(fields) >= 3 {
			spec.Tasks = atoiDefault(fields[2], 1)
			spec.Nodes = 1
		}
	case "-l":
		if strings.HasPrefix(fields[1], "h_rt=") {
			spec.WallTime = parseWall(strings.TrimPrefix(fields[1], "h_rt="))
		}
	}
}

func parseSLURM(spec *ScriptSpec, rest string) {
	for _, f := range strings.Fields(rest) {
		switch {
		case strings.HasPrefix(f, "--job-name="):
			spec.JobName = strings.TrimPrefix(f, "--job-name=")
		case strings.HasPrefix(f, "--partition="):
			spec.Queue = strings.TrimPrefix(f, "--partition=")
		case strings.HasPrefix(f, "--nodes="):
			spec.Nodes = atoiDefault(strings.TrimPrefix(f, "--nodes="), 1)
		case strings.HasPrefix(f, "--ntasks-per-node="):
			spec.Tasks = atoiDefault(strings.TrimPrefix(f, "--ntasks-per-node="), 1)
		case strings.HasPrefix(f, "--time="):
			spec.WallTime = parseWall(strings.TrimPrefix(f, "--time="))
		}
	}
}

func parseWall(s string) time.Duration {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0
	}
	h := atoiDefault(parts[0], 0)
	m := atoiDefault(parts[1], 0)
	sec := atoiDefault(parts[2], 0)
	return time.Duration(h)*time.Hour + time.Duration(m)*time.Minute + time.Duration(sec)*time.Second
}

func atoiDefault(s string, def int) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return n
}

// Substitute replaces the %CMD% placeholder in a user-provided template.
func Substitute(template, command string) string {
	return strings.ReplaceAll(template, CmdPlaceholder, command)
}
