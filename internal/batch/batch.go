// Package batch simulates the HPC resource-manager layer FEAM submits its
// probe jobs through: PBS, SGE, and SLURM submission-script formats, queue
// wait-time modelling (including the short debug queues the paper recommends
// for FEAM runs), CPU-hour accounting, and the spaced retry policy the
// evaluation used (five attempts, spread out to dodge transient overload).
//
// FEAM itself only requires the user to supply one serial and one parallel
// submission script per site — the single piece of site knowledge the paper
// does not automate — so this package also provides the %CMD% placeholder
// substitution FEAM performs on those scripts.
package batch

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Manager is a resource-manager flavor.
type Manager int

const (
	PBS Manager = iota
	SGE
	SLURM
)

func (m Manager) String() string {
	switch m {
	case PBS:
		return "PBS"
	case SGE:
		return "SGE"
	case SLURM:
		return "SLURM"
	default:
		return fmt.Sprintf("Manager(%d)", int(m))
	}
}

// SubmitCommand returns the manager's submission executable.
func (m Manager) SubmitCommand() string {
	switch m {
	case PBS:
		return "qsub"
	case SGE:
		return "qsub"
	case SLURM:
		return "sbatch"
	default:
		return "qsub"
	}
}

// ScriptSpec describes a submission script.
type ScriptSpec struct {
	Manager  Manager
	JobName  string
	Queue    string
	Nodes    int
	Tasks    int
	WallTime time.Duration
	// Command is the job payload; "%CMD%" in templates is replaced by it.
	Command string
}

// CmdPlaceholder is the token FEAM substitutes into user-provided templates.
const CmdPlaceholder = "%CMD%"

// Generate renders the submission script in the manager's native directive
// syntax.
func Generate(spec ScriptSpec) string {
	var b strings.Builder
	b.WriteString("#!/bin/sh\n")
	wall := fmtWall(spec.Manager, spec.WallTime)
	switch spec.Manager {
	case PBS:
		fmt.Fprintf(&b, "#PBS -N %s\n", spec.JobName)
		if spec.Queue != "" {
			fmt.Fprintf(&b, "#PBS -q %s\n", spec.Queue)
		}
		fmt.Fprintf(&b, "#PBS -l nodes=%d:ppn=%d\n", spec.Nodes, spec.Tasks)
		fmt.Fprintf(&b, "#PBS -l walltime=%s\n", wall)
	case SGE:
		fmt.Fprintf(&b, "#$ -N %s\n", spec.JobName)
		if spec.Queue != "" {
			fmt.Fprintf(&b, "#$ -q %s\n", spec.Queue)
		}
		fmt.Fprintf(&b, "#$ -pe mpi %d\n", spec.Nodes*spec.Tasks)
		fmt.Fprintf(&b, "#$ -l h_rt=%s\n", wall)
	case SLURM:
		fmt.Fprintf(&b, "#SBATCH --job-name=%s\n", spec.JobName)
		if spec.Queue != "" {
			fmt.Fprintf(&b, "#SBATCH --partition=%s\n", spec.Queue)
		}
		fmt.Fprintf(&b, "#SBATCH --nodes=%d\n", spec.Nodes)
		fmt.Fprintf(&b, "#SBATCH --ntasks-per-node=%d\n", spec.Tasks)
		fmt.Fprintf(&b, "#SBATCH --time=%s\n", wall)
	}
	b.WriteString(spec.Command)
	b.WriteString("\n")
	return b.String()
}

// fmtWall renders a walltime in the manager's conventional syntax:
// rolling hours ("26:03:04") for PBS and SGE, and SLURM's day form
// ("2-00:30:00") once the request reaches a full day — the same value
// sbatch would echo back.
func fmtWall(m Manager, d time.Duration) string {
	total := int(d.Seconds())
	if m == SLURM && total >= 24*3600 {
		days := total / (24 * 3600)
		rem := total - days*24*3600
		return fmt.Sprintf("%d-%02d:%02d:%02d", days, rem/3600, (rem/60)%60, rem%60)
	}
	return fmt.Sprintf("%02d:%02d:%02d", total/3600, (total/60)%60, total%60)
}

// Parse recovers a ScriptSpec from a submission script. Unknown directive
// lines are ignored; the last non-directive, non-comment line is taken as
// the command.
//
// Malformed directives are errors, not silent defaults: a walltime that
// does not parse, a non-numeric node/task count, or a script mixing
// directives of different managers all fail with the offending line
// number. A zero-valued WallTime slipping through here used to bypass
// Submit's queue MaxWallTime check entirely, which is exactly how an
// unparseable "--time=" once queued a week-long job on a debug queue.
func Parse(text string) (ScriptSpec, error) {
	spec := ScriptSpec{Nodes: 1, Tasks: 1}
	sawDirective := false
	for i, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		var (
			m    Manager
			rest string
			ok   bool
		)
		switch {
		case strings.HasPrefix(trimmed, "#PBS "):
			m, rest, ok = PBS, strings.TrimPrefix(trimmed, "#PBS "), true
		case strings.HasPrefix(trimmed, "#$ "):
			m, rest, ok = SGE, strings.TrimPrefix(trimmed, "#$ "), true
		case strings.HasPrefix(trimmed, "#SBATCH "):
			m, rest, ok = SLURM, strings.TrimPrefix(trimmed, "#SBATCH "), true
		case trimmed == "" || strings.HasPrefix(trimmed, "#"):
			// comment or shebang
			continue
		default:
			spec.Command = trimmed
			continue
		}
		if ok {
			if sawDirective && m != spec.Manager {
				return spec, fmt.Errorf("batch: line %d: %s directive in a %s script", i+1, m, spec.Manager)
			}
			spec.Manager = m
			sawDirective = true
			var err error
			switch m {
			case PBS:
				err = parsePBS(&spec, rest)
			case SGE:
				err = parseSGE(&spec, rest)
			case SLURM:
				err = parseSLURM(&spec, rest)
			}
			if err != nil {
				return spec, fmt.Errorf("batch: line %d: %v", i+1, err)
			}
		}
	}
	if !sawDirective {
		return spec, fmt.Errorf("batch: no recognizable scheduler directives")
	}
	return spec, nil
}

func parsePBS(spec *ScriptSpec, rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil
	}
	switch fields[0] {
	case "-N":
		spec.JobName = fields[1]
	case "-q":
		spec.Queue = fields[1]
	case "-l":
		for _, kv := range strings.Split(fields[1], ",") {
			if strings.HasPrefix(kv, "walltime=") {
				wall, err := parseWallSeconds(strings.TrimPrefix(kv, "walltime="))
				if err != nil {
					return fmt.Errorf("walltime: %v", err)
				}
				spec.WallTime = wall
			}
			if strings.HasPrefix(kv, "nodes=") {
				parts := strings.Split(strings.TrimPrefix(kv, "nodes="), ":")
				n, err := parseCount(parts[0])
				if err != nil {
					return fmt.Errorf("nodes=%s: %v", parts[0], err)
				}
				spec.Nodes = n
				for _, p := range parts[1:] {
					if strings.HasPrefix(p, "ppn=") {
						t, err := parseCount(strings.TrimPrefix(p, "ppn="))
						if err != nil {
							return fmt.Errorf("%s: %v", p, err)
						}
						spec.Tasks = t
					}
				}
			}
		}
	}
	return nil
}

func parseSGE(spec *ScriptSpec, rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil
	}
	switch fields[0] {
	case "-N":
		spec.JobName = fields[1]
	case "-q":
		spec.Queue = fields[1]
	case "-pe":
		if len(fields) >= 3 {
			t, err := parseCount(fields[2])
			if err != nil {
				return fmt.Errorf("-pe %s %s: %v", fields[1], fields[2], err)
			}
			spec.Tasks = t
			spec.Nodes = 1
		}
	case "-l":
		if strings.HasPrefix(fields[1], "h_rt=") {
			wall, err := parseWallSeconds(strings.TrimPrefix(fields[1], "h_rt="))
			if err != nil {
				return fmt.Errorf("h_rt: %v", err)
			}
			spec.WallTime = wall
		}
	}
	return nil
}

func parseSLURM(spec *ScriptSpec, rest string) error {
	for _, f := range strings.Fields(rest) {
		switch {
		case strings.HasPrefix(f, "--job-name="):
			spec.JobName = strings.TrimPrefix(f, "--job-name=")
		case strings.HasPrefix(f, "--partition="):
			spec.Queue = strings.TrimPrefix(f, "--partition=")
		case strings.HasPrefix(f, "--nodes="):
			n, err := parseCount(strings.TrimPrefix(f, "--nodes="))
			if err != nil {
				return fmt.Errorf("%s: %v", f, err)
			}
			spec.Nodes = n
		case strings.HasPrefix(f, "--ntasks-per-node="):
			t, err := parseCount(strings.TrimPrefix(f, "--ntasks-per-node="))
			if err != nil {
				return fmt.Errorf("%s: %v", f, err)
			}
			spec.Tasks = t
		case strings.HasPrefix(f, "--time="):
			wall, err := parseWall(strings.TrimPrefix(f, "--time="))
			if err != nil {
				return fmt.Errorf("--time: %v", err)
			}
			spec.WallTime = wall
		}
	}
	return nil
}

// parseWall parses a SLURM --time= value. sbatch accepts six forms —
// "MM", "MM:SS", "HH:MM:SS", "D-HH", "D-HH:MM", and "D-HH:MM:SS" — and a
// bare number means MINUTES, not seconds. Every one of the short forms
// used to parse as zero here, which then sailed through Submit's
// MaxWallTime check; now anything outside the six forms is an error.
func parseWall(s string) (time.Duration, error) {
	days := 0
	rest := s
	if i := strings.IndexByte(s, '-'); i >= 0 {
		d, err := parseWallInt(s[:i])
		if err != nil {
			return 0, fmt.Errorf("bad walltime %q: %v", s, err)
		}
		days, rest = d, s[i+1:]
		// Day forms: D-HH, D-HH:MM, D-HH:MM:SS.
		parts, err := parseWallParts(rest, 3)
		if err != nil {
			return 0, fmt.Errorf("bad walltime %q: %v", s, err)
		}
		h, m, sec := parts[0], 0, 0
		if len(parts) > 1 {
			m = parts[1]
		}
		if len(parts) > 2 {
			sec = parts[2]
		}
		return wallDuration(days, h, m, sec), nil
	}
	parts, err := parseWallParts(rest, 3)
	if err != nil {
		return 0, fmt.Errorf("bad walltime %q: %v", s, err)
	}
	switch len(parts) {
	case 1: // MM — minutes, per sbatch(1)
		return wallDuration(0, 0, parts[0], 0), nil
	case 2: // MM:SS
		return wallDuration(0, 0, parts[0], parts[1]), nil
	default: // HH:MM:SS
		return wallDuration(0, parts[0], parts[1], parts[2]), nil
	}
}

// parseWallSeconds parses a PBS walltime= / SGE h_rt= value: "SS" (bare
// seconds), "MM:SS", or "HH:MM:SS". Hours may exceed 23 (rolling hours).
func parseWallSeconds(s string) (time.Duration, error) {
	parts, err := parseWallParts(s, 3)
	if err != nil {
		return 0, fmt.Errorf("bad walltime %q: %v", s, err)
	}
	switch len(parts) {
	case 1: // SS — seconds, per qsub's resource syntax
		return wallDuration(0, 0, 0, parts[0]), nil
	case 2: // MM:SS
		return wallDuration(0, 0, parts[0], parts[1]), nil
	default: // HH:MM:SS
		return wallDuration(0, parts[0], parts[1], parts[2]), nil
	}
}

// parseWallParts splits a colon-separated walltime into at most max
// non-negative integer components.
func parseWallParts(s string, max int) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("empty")
	}
	fields := strings.Split(s, ":")
	if len(fields) > max {
		return nil, fmt.Errorf("too many components")
	}
	out := make([]int, len(fields))
	for i, f := range fields {
		n, err := parseWallInt(f)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

func parseWallInt(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("empty component")
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%q is not a non-negative integer", s)
	}
	return n, nil
}

func wallDuration(days, h, m, s int) time.Duration {
	return time.Duration(days)*24*time.Hour +
		time.Duration(h)*time.Hour + time.Duration(m)*time.Minute + time.Duration(s)*time.Second
}

// parseCount parses a node/task count; zero and negative values are as
// wrong as non-numbers (a "nodes=0" request would divide the accounting).
func parseCount(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("%q is not a number", s)
	}
	if n < 1 {
		return 0, fmt.Errorf("%d is not a positive count", n)
	}
	return n, nil
}

// Substitute replaces the %CMD% placeholder in a user-provided template.
func Substitute(template, command string) string {
	return strings.ReplaceAll(template, CmdPlaceholder, command)
}
