package batch

import (
	"strings"
	"testing"
	"time"
)

func TestGenerateParseRoundTrip(t *testing.T) {
	for _, m := range []Manager{PBS, SGE, SLURM} {
		spec := ScriptSpec{
			Manager: m, JobName: "feam-probe", Queue: "debug",
			Nodes: 2, Tasks: 4, WallTime: 10 * time.Minute,
			Command: "mpiexec -n 8 ./hello",
		}
		text := Generate(spec)
		got, err := Parse(text)
		if err != nil {
			t.Fatalf("%v: %v\nscript:\n%s", m, err, text)
		}
		if got.Manager != m {
			t.Errorf("%v: manager = %v", m, got.Manager)
		}
		if got.JobName != "feam-probe" || got.Queue != "debug" {
			t.Errorf("%v: name/queue = %q/%q", m, got.JobName, got.Queue)
		}
		if got.Command != "mpiexec -n 8 ./hello" {
			t.Errorf("%v: command = %q", m, got.Command)
		}
		if got.WallTime != 10*time.Minute {
			t.Errorf("%v: walltime = %v", m, got.WallTime)
		}
		if m == SGE {
			// SGE expresses size as total slots.
			if got.Nodes*got.Tasks != 8 {
				t.Errorf("SGE size = %d x %d", got.Nodes, got.Tasks)
			}
		} else if got.Nodes != 2 || got.Tasks != 4 {
			t.Errorf("%v: size = %d x %d", m, got.Nodes, got.Tasks)
		}
	}
}

func TestParseRejectsPlainShell(t *testing.T) {
	if _, err := Parse("#!/bin/sh\necho hi\n"); err == nil {
		t.Error("script without directives should not parse")
	}
}

func TestManagerStrings(t *testing.T) {
	if PBS.String() != "PBS" || SGE.String() != "SGE" || SLURM.String() != "SLURM" {
		t.Error("Manager.String broken")
	}
	if PBS.SubmitCommand() != "qsub" || SLURM.SubmitCommand() != "sbatch" {
		t.Error("SubmitCommand broken")
	}
}

func TestSubstitute(t *testing.T) {
	tpl := Generate(ScriptSpec{Manager: PBS, JobName: "t", Nodes: 1, Tasks: 1,
		WallTime: time.Minute, Command: CmdPlaceholder})
	out := Substitute(tpl, "./feam --phase target")
	if strings.Contains(out, CmdPlaceholder) {
		t.Error("placeholder not substituted")
	}
	if !strings.Contains(out, "./feam --phase target") {
		t.Error("command missing")
	}
}

func TestClusterQueues(t *testing.T) {
	c := NewCluster(PBS)
	q, err := c.FindQueue("debug")
	if err != nil || q.Name != "debug" {
		t.Fatalf("FindQueue(debug) = %+v, %v", q, err)
	}
	if _, err := c.FindQueue("imaginary"); err == nil {
		t.Error("unknown queue accepted")
	}
	def, err := c.FindQueue("")
	if err != nil || def.Name != "normal" {
		t.Errorf("default queue = %+v, %v", def, err)
	}
	// Debug queue waits far less than normal for the same job.
	if c.Queues[1].WaitFor(16) >= c.Queues[0].WaitFor(16) {
		t.Error("debug queue should be faster")
	}
}

func TestSubmitSuccessFirstTry(t *testing.T) {
	c := NewCluster(SLURM)
	spec := ScriptSpec{Manager: SLURM, JobName: "p", Queue: "debug", Nodes: 1, Tasks: 4,
		WallTime: 5 * time.Minute, Command: "./hello"}
	res, err := c.Submit(spec, func(attempt int) (bool, string, time.Duration) {
		return true, "Hello world", 30 * time.Second
	}, 5, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success || res.Attempts != 1 {
		t.Errorf("res = %+v", res)
	}
	if res.RunTime != 30*time.Second {
		t.Errorf("RunTime = %v", res.RunTime)
	}
	if c.CPUHoursUsed() <= 0 {
		t.Error("no accounting")
	}
	if res.TotalTime() != res.QueueWait+res.RunTime {
		t.Error("TotalTime inconsistent")
	}
}

func TestSubmitRetriesThenSucceeds(t *testing.T) {
	c := NewCluster(PBS)
	spec := ScriptSpec{Manager: PBS, Queue: "debug", Nodes: 1, Tasks: 1,
		WallTime: 5 * time.Minute, Command: "./flaky"}
	res, err := c.Submit(spec, func(attempt int) (bool, string, time.Duration) {
		return attempt >= 3, "mpd startup", 10 * time.Second
	}, 5, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success || res.Attempts != 3 {
		t.Errorf("res = %+v", res)
	}
}

func TestSubmitExhaustsRetries(t *testing.T) {
	c := NewCluster(PBS)
	spec := ScriptSpec{Manager: PBS, Queue: "debug", Nodes: 1, Tasks: 1,
		WallTime: 5 * time.Minute, Command: "./doomed"}
	before := c.Now()
	res, err := c.Submit(spec, func(attempt int) (bool, string, time.Duration) {
		return false, "segfault", time.Second
	}, 5, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Success || res.Attempts != 5 {
		t.Errorf("res = %+v", res)
	}
	// Virtual clock advanced by waits, runs, and retry spacing.
	if c.Now() <= before {
		t.Error("clock did not advance")
	}
}

func TestSubmitWallTimeKill(t *testing.T) {
	c := NewCluster(SGE)
	spec := ScriptSpec{Manager: SGE, Queue: "debug", Nodes: 1, Tasks: 1,
		WallTime: time.Minute, Command: "./long"}
	res, err := c.Submit(spec, func(attempt int) (bool, string, time.Duration) {
		return true, "done", time.Hour
	}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Error("job exceeding walltime should be killed")
	}
	if !strings.Contains(res.Output, "walltime") {
		t.Errorf("Output = %q", res.Output)
	}
}

func TestSubmitQueueLimits(t *testing.T) {
	c := NewCluster(PBS)
	spec := ScriptSpec{Manager: PBS, Queue: "debug", Nodes: 1, Tasks: 1,
		WallTime: 2 * time.Hour, Command: "x"}
	if _, err := c.Submit(spec, nil, 1, 0); err == nil {
		t.Error("walltime above queue limit accepted")
	}
	spec.Queue = "nope"
	if _, err := c.Submit(spec, nil, 1, 0); err == nil {
		t.Error("unknown queue accepted")
	}
}
