package batch_test

import (
	"fmt"
	"time"

	"feam/internal/batch"
)

func ExampleGenerate() {
	script := batch.Generate(batch.ScriptSpec{
		Manager: batch.PBS, JobName: "feam-probe", Queue: "debug",
		Nodes: 1, Tasks: 4, WallTime: 10 * time.Minute,
		Command: batch.CmdPlaceholder,
	})
	fmt.Print(batch.Substitute(script, "mpiexec -n 4 ./hello"))
	// Output:
	// #!/bin/sh
	// #PBS -N feam-probe
	// #PBS -q debug
	// #PBS -l nodes=1:ppn=4
	// #PBS -l walltime=00:10:00
	// mpiexec -n 4 ./hello
}

func ExampleParse() {
	spec, _ := batch.Parse("#!/bin/sh\n#SBATCH --job-name=cg\n#SBATCH --partition=debug\n#SBATCH --nodes=2\n#SBATCH --ntasks-per-node=8\n#SBATCH --time=00:30:00\nmpiexec ./cg.A.16\n")
	fmt.Println(spec.Manager, spec.JobName, spec.Nodes*spec.Tasks, spec.WallTime)
	// Output: SLURM cg 16 30m0s
}
