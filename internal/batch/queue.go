package batch

import (
	"fmt"
	"time"
)

// Queue models one scheduler queue's wait behaviour.
type Queue struct {
	// Name of the queue ("normal", "debug").
	Name string
	// MaxWallTime is the queue limit; jobs above it are rejected.
	MaxWallTime time.Duration
	// BaseWait is the fixed queueing delay.
	BaseWait time.Duration
	// PerTaskWait scales the delay with requested task count (bigger jobs
	// wait longer).
	PerTaskWait time.Duration
}

// WaitFor returns the simulated queue wait for a job of the given size.
func (q Queue) WaitFor(tasks int) time.Duration {
	return q.BaseWait + time.Duration(tasks)*q.PerTaskWait
}

// Cluster is a site's batch system: a manager flavor, its queues, and a
// virtual clock that advances as jobs run.
type Cluster struct {
	Manager Manager
	Queues  []Queue

	now       time.Duration
	cpuSecond float64
}

// NewCluster creates a batch system with a conventional pair of queues: a
// "normal" production queue and a short-wait "debug" queue.
func NewCluster(m Manager) *Cluster {
	return &Cluster{
		Manager: m,
		Queues: []Queue{
			{Name: "normal", MaxWallTime: 24 * time.Hour, BaseWait: 20 * time.Minute, PerTaskWait: 30 * time.Second},
			{Name: "debug", MaxWallTime: 30 * time.Minute, BaseWait: 45 * time.Second, PerTaskWait: 2 * time.Second},
		},
	}
}

// FindQueue returns the named queue ("" selects the first/default queue).
func (c *Cluster) FindQueue(name string) (Queue, error) {
	if name == "" && len(c.Queues) > 0 {
		return c.Queues[0], nil
	}
	for _, q := range c.Queues {
		if q.Name == name {
			return q, nil
		}
	}
	return Queue{}, fmt.Errorf("batch: unknown queue %q", name)
}

// Now returns the virtual clock.
func (c *Cluster) Now() time.Duration { return c.now }

// CPUHoursUsed returns accumulated accounting.
func (c *Cluster) CPUHoursUsed() float64 { return c.cpuSecond / 3600 }

// JobResult reports one submission.
type JobResult struct {
	// QueueWait is the simulated time spent pending.
	QueueWait time.Duration
	// RunTime is the simulated execution time.
	RunTime time.Duration
	// Attempts is how many submissions were made (retry policy).
	Attempts int
	// Success is the payload's final outcome.
	Success bool
	// Output is the payload's final textual outcome.
	Output string
}

// TotalTime is wait plus run across attempts (approximated by the recorded
// totals).
func (r JobResult) TotalTime() time.Duration { return r.QueueWait + r.RunTime }

// Payload is the simulated job body: it returns success and output, plus
// the simulated run duration.
type Payload func(attempt int) (success bool, output string, runTime time.Duration)

// Submit runs a job through the queue with the paper's retry policy: up to
// maxAttempts submissions, spaced by retrySpacing of virtual time, stopping
// at the first success.
func (c *Cluster) Submit(spec ScriptSpec, payload Payload, maxAttempts int, retrySpacing time.Duration) (JobResult, error) {
	q, err := c.FindQueue(spec.Queue)
	if err != nil {
		return JobResult{}, err
	}
	if spec.WallTime > q.MaxWallTime {
		return JobResult{}, fmt.Errorf("batch: walltime %s exceeds queue %s limit %s", spec.WallTime, q.Name, q.MaxWallTime)
	}
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	tasks := spec.Nodes * spec.Tasks
	if tasks < 1 {
		tasks = 1
	}
	var res JobResult
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		wait := q.WaitFor(tasks)
		c.now += wait
		res.QueueWait += wait
		ok, out, runTime := payload(attempt)
		if runTime > spec.WallTime && spec.WallTime > 0 {
			// The scheduler kills jobs at the wall-time limit.
			runTime = spec.WallTime
			ok = false
			out = "killed: walltime exceeded"
		}
		c.now += runTime
		res.RunTime += runTime
		c.cpuSecond += runTime.Seconds() * float64(tasks)
		res.Attempts = attempt
		res.Success = ok
		res.Output = out
		if ok {
			break
		}
		if attempt < maxAttempts {
			c.now += retrySpacing
		}
	}
	return res, nil
}
