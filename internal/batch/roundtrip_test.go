package batch

import (
	"strings"
	"testing"
	"time"
)

// TestGenerateSubstituteParseRoundTrip drives the exact round-trip FEAM
// performs on submission scripts — render the manager's native directives,
// substitute the probe command for %CMD%, parse the script back — across
// every manager flavor, and checks what survives. SGE expresses
// parallelism as one slot count ("-pe mpi N"), so nodes×tasks legitimately
// collapses into tasks there; the table encodes that lossiness explicitly.
func TestGenerateSubstituteParseRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		spec ScriptSpec
		// want is the spec Parse should recover after the round-trip.
		want ScriptSpec
	}{
		{
			name: "pbs",
			spec: ScriptSpec{Manager: PBS, JobName: "feam-probe", Queue: "debug",
				Nodes: 2, Tasks: 8, WallTime: 10 * time.Minute, Command: CmdPlaceholder},
			want: ScriptSpec{Manager: PBS, JobName: "feam-probe", Queue: "debug",
				Nodes: 2, Tasks: 8, WallTime: 10 * time.Minute},
		},
		{
			name: "pbs no queue",
			spec: ScriptSpec{Manager: PBS, JobName: "j", Nodes: 1, Tasks: 1,
				WallTime: time.Hour, Command: CmdPlaceholder},
			want: ScriptSpec{Manager: PBS, JobName: "j", Nodes: 1, Tasks: 1,
				WallTime: time.Hour},
		},
		{
			name: "sge collapses nodes into slots",
			spec: ScriptSpec{Manager: SGE, JobName: "feam-probe", Queue: "debug",
				Nodes: 2, Tasks: 4, WallTime: 30 * time.Minute, Command: CmdPlaceholder},
			// "-pe mpi 8" comes back as 8 tasks on 1 node.
			want: ScriptSpec{Manager: SGE, JobName: "feam-probe", Queue: "debug",
				Nodes: 1, Tasks: 8, WallTime: 30 * time.Minute},
		},
		{
			name: "slurm",
			spec: ScriptSpec{Manager: SLURM, JobName: "feam-probe", Queue: "debug",
				Nodes: 3, Tasks: 16, WallTime: 90 * time.Minute, Command: CmdPlaceholder},
			want: ScriptSpec{Manager: SLURM, JobName: "feam-probe", Queue: "debug",
				Nodes: 3, Tasks: 16, WallTime: 90 * time.Minute},
		},
		{
			name: "walltime over a day keeps rolling hours",
			spec: ScriptSpec{Manager: PBS, JobName: "long", Nodes: 1, Tasks: 1,
				WallTime: 26*time.Hour + 3*time.Minute + 4*time.Second, Command: CmdPlaceholder},
			want: ScriptSpec{Manager: PBS, JobName: "long", Nodes: 1, Tasks: 1,
				WallTime: 26*time.Hour + 3*time.Minute + 4*time.Second},
		},
		{
			name: "slurm walltime over a day uses day form",
			spec: ScriptSpec{Manager: SLURM, JobName: "long", Nodes: 2, Tasks: 8,
				WallTime: 48*time.Hour + 30*time.Minute, Command: CmdPlaceholder},
			want: ScriptSpec{Manager: SLURM, JobName: "long", Nodes: 2, Tasks: 8,
				WallTime: 48*time.Hour + 30*time.Minute},
		},
		{
			name: "sge walltime over a day keeps rolling hours",
			spec: ScriptSpec{Manager: SGE, JobName: "long", Nodes: 1, Tasks: 4,
				WallTime: 30 * time.Hour, Command: CmdPlaceholder},
			want: ScriptSpec{Manager: SGE, JobName: "long", Nodes: 1, Tasks: 4,
				WallTime: 30 * time.Hour},
		},
	}
	const cmd = "mpirun -np 8 ./cg.x"
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			script := Generate(tc.spec)
			if !strings.Contains(script, CmdPlaceholder) {
				t.Fatalf("generated script lost the placeholder:\n%s", script)
			}
			substituted := Substitute(script, cmd)
			if strings.Contains(substituted, CmdPlaceholder) {
				t.Fatalf("placeholder survived substitution:\n%s", substituted)
			}
			got, err := Parse(substituted)
			if err != nil {
				t.Fatalf("Parse: %v\nscript:\n%s", err, substituted)
			}
			tc.want.Command = cmd
			if got != tc.want {
				t.Errorf("round-trip mismatch\n got: %+v\nwant: %+v\nscript:\n%s", got, tc.want, substituted)
			}
		})
	}
}

// TestParsePartialScripts exercises Parse against hand-written scripts
// with missing, reordered, or unknown directives — the shape of real
// user-supplied templates.
func TestParsePartialScripts(t *testing.T) {
	cases := []struct {
		name   string
		script string
		want   ScriptSpec
	}{
		{
			name:   "pbs minimal",
			script: "#!/bin/sh\n#PBS -N x\n./a.out\n",
			want:   ScriptSpec{Manager: PBS, JobName: "x", Nodes: 1, Tasks: 1, Command: "./a.out"},
		},
		{
			name:   "pbs combined resource list",
			script: "#PBS -N x\n#PBS -l nodes=4:ppn=2,walltime=01:30:00\nrun\n",
			want: ScriptSpec{Manager: PBS, JobName: "x", Nodes: 4, Tasks: 2,
				WallTime: 90 * time.Minute, Command: "run"},
		},
		{
			name:   "unknown directives are ignored",
			script: "#PBS -N x\n#PBS -M ops@example.org\n#PBS -j oe\nrun\n",
			want:   ScriptSpec{Manager: PBS, JobName: "x", Nodes: 1, Tasks: 1, Command: "run"},
		},
		{
			name:   "last command wins",
			script: "#SBATCH --job-name=x\nmodule load mpi\nmpirun ./a.out\n",
			want:   ScriptSpec{Manager: SLURM, JobName: "x", Nodes: 1, Tasks: 1, Command: "mpirun ./a.out"},
		},
		{
			// A bare SLURM --time= value is minutes, per sbatch(1).
			name:   "slurm bare time is minutes",
			script: "#SBATCH --job-name=x\n#SBATCH --time=15\nrun\n",
			want: ScriptSpec{Manager: SLURM, JobName: "x", Nodes: 1, Tasks: 1,
				WallTime: 15 * time.Minute, Command: "run"},
		},
		{
			name:   "slurm day form",
			script: "#SBATCH --job-name=x\n#SBATCH --time=2-00:30:00\nrun\n",
			want: ScriptSpec{Manager: SLURM, JobName: "x", Nodes: 1, Tasks: 1,
				WallTime: 48*time.Hour + 30*time.Minute, Command: "run"},
		},
		{
			name:   "sge bare directives",
			script: "#$ -N x\n#$ -l h_rt=00:05:00\nrun\n",
			want: ScriptSpec{Manager: SGE, JobName: "x", Nodes: 1, Tasks: 1,
				WallTime: 5 * time.Minute, Command: "run"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Parse(tc.script)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if got != tc.want {
				t.Errorf("got %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestParseWallSLURMForms pins the six --time= syntaxes sbatch accepts.
// The bare-number and day forms used to parse as zero, which then passed
// Submit's MaxWallTime check.
func TestParseWallSLURMForms(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"90", 90 * time.Minute},
		{"30:15", 30*time.Minute + 15*time.Second},
		{"01:30:00", 90 * time.Minute},
		{"2-00", 48 * time.Hour},
		{"2-00:30", 48*time.Hour + 30*time.Minute},
		{"2-00:30:00", 48*time.Hour + 30*time.Minute},
	}
	for _, tc := range cases {
		got, err := parseWall(tc.in)
		if err != nil {
			t.Errorf("parseWall(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseWall(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestParseWallSecondsForms pins PBS walltime= / SGE h_rt= semantics,
// where a bare number is seconds.
func TestParseWallSecondsForms(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"90", 90 * time.Second},
		{"30:15", 30*time.Minute + 15*time.Second},
		{"26:03:04", 26*time.Hour + 3*time.Minute + 4*time.Second},
	}
	for _, tc := range cases {
		got, err := parseWallSeconds(tc.in)
		if err != nil {
			t.Errorf("parseWallSeconds(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseWallSeconds(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestParseRejectsMalformedDirectives: malformed walltimes and counts
// must surface as positioned errors from Parse, never as silent defaults
// that bypass queue limits.
func TestParseRejectsMalformedDirectives(t *testing.T) {
	cases := []struct {
		name    string
		script  string
		errWant string
	}{
		{"slurm bad time", "#SBATCH --time=soon\nrun\n", "walltime"},
		{"slurm too many time parts", "#SBATCH --time=1:2:3:4\nrun\n", "walltime"},
		{"slurm bad nodes", "#SBATCH --nodes=lots\nrun\n", "--nodes"},
		{"slurm bad ntasks", "#SBATCH --ntasks-per-node=-2\nrun\n", "--ntasks"},
		{"slurm zero nodes", "#SBATCH --nodes=0\nrun\n", "--nodes"},
		{"pbs bad walltime", "#PBS -l walltime=later\nrun\n", "walltime"},
		{"pbs bad nodes", "#PBS -l nodes=lots:ppn=many\nrun\n", "nodes"},
		{"pbs bad ppn", "#PBS -l nodes=2:ppn=many\nrun\n", "ppn"},
		{"sge bad h_rt", "#$ -l h_rt=1:2:3:4\nrun\n", "h_rt"},
		{"sge bad pe slots", "#$ -pe mpi lots\nrun\n", "-pe"},
		{"mixed managers", "#PBS -N x\n#SBATCH --time=10\nrun\n", "line 2"},
		{"mixed sge into slurm", "#SBATCH --job-name=x\n#$ -N y\nrun\n", "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.script)
			if err == nil {
				t.Fatalf("Parse accepted malformed script:\n%s", tc.script)
			}
			if !strings.Contains(err.Error(), tc.errWant) {
				t.Errorf("error %q does not mention %q", err, tc.errWant)
			}
		})
	}
}

// TestParseRejectsDirectivelessScripts: a script with no recognizable
// scheduler directives cannot identify its manager and must error rather
// than silently defaulting.
func TestParseRejectsDirectivelessScripts(t *testing.T) {
	for _, script := range []string{
		"",
		"#!/bin/sh\n./a.out\n",
		"# just a comment\nmpirun ./a.out\n",
	} {
		if _, err := Parse(script); err == nil {
			t.Errorf("Parse(%q) succeeded, want directive error", script)
		}
	}
}
