package batch

import (
	"strings"
	"testing"
	"time"
)

// TestGenerateSubstituteParseRoundTrip drives the exact round-trip FEAM
// performs on submission scripts — render the manager's native directives,
// substitute the probe command for %CMD%, parse the script back — across
// every manager flavor, and checks what survives. SGE expresses
// parallelism as one slot count ("-pe mpi N"), so nodes×tasks legitimately
// collapses into tasks there; the table encodes that lossiness explicitly.
func TestGenerateSubstituteParseRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		spec ScriptSpec
		// want is the spec Parse should recover after the round-trip.
		want ScriptSpec
	}{
		{
			name: "pbs",
			spec: ScriptSpec{Manager: PBS, JobName: "feam-probe", Queue: "debug",
				Nodes: 2, Tasks: 8, WallTime: 10 * time.Minute, Command: CmdPlaceholder},
			want: ScriptSpec{Manager: PBS, JobName: "feam-probe", Queue: "debug",
				Nodes: 2, Tasks: 8, WallTime: 10 * time.Minute},
		},
		{
			name: "pbs no queue",
			spec: ScriptSpec{Manager: PBS, JobName: "j", Nodes: 1, Tasks: 1,
				WallTime: time.Hour, Command: CmdPlaceholder},
			want: ScriptSpec{Manager: PBS, JobName: "j", Nodes: 1, Tasks: 1,
				WallTime: time.Hour},
		},
		{
			name: "sge collapses nodes into slots",
			spec: ScriptSpec{Manager: SGE, JobName: "feam-probe", Queue: "debug",
				Nodes: 2, Tasks: 4, WallTime: 30 * time.Minute, Command: CmdPlaceholder},
			// "-pe mpi 8" comes back as 8 tasks on 1 node.
			want: ScriptSpec{Manager: SGE, JobName: "feam-probe", Queue: "debug",
				Nodes: 1, Tasks: 8, WallTime: 30 * time.Minute},
		},
		{
			name: "slurm",
			spec: ScriptSpec{Manager: SLURM, JobName: "feam-probe", Queue: "debug",
				Nodes: 3, Tasks: 16, WallTime: 90 * time.Minute, Command: CmdPlaceholder},
			want: ScriptSpec{Manager: SLURM, JobName: "feam-probe", Queue: "debug",
				Nodes: 3, Tasks: 16, WallTime: 90 * time.Minute},
		},
		{
			name: "walltime over a day keeps rolling hours",
			spec: ScriptSpec{Manager: PBS, JobName: "long", Nodes: 1, Tasks: 1,
				WallTime: 26*time.Hour + 3*time.Minute + 4*time.Second, Command: CmdPlaceholder},
			want: ScriptSpec{Manager: PBS, JobName: "long", Nodes: 1, Tasks: 1,
				WallTime: 26*time.Hour + 3*time.Minute + 4*time.Second},
		},
	}
	const cmd = "mpirun -np 8 ./cg.x"
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			script := Generate(tc.spec)
			if !strings.Contains(script, CmdPlaceholder) {
				t.Fatalf("generated script lost the placeholder:\n%s", script)
			}
			substituted := Substitute(script, cmd)
			if strings.Contains(substituted, CmdPlaceholder) {
				t.Fatalf("placeholder survived substitution:\n%s", substituted)
			}
			got, err := Parse(substituted)
			if err != nil {
				t.Fatalf("Parse: %v\nscript:\n%s", err, substituted)
			}
			tc.want.Command = cmd
			if got != tc.want {
				t.Errorf("round-trip mismatch\n got: %+v\nwant: %+v\nscript:\n%s", got, tc.want, substituted)
			}
		})
	}
}

// TestParsePartialScripts exercises Parse against hand-written scripts
// with missing, reordered, or unknown directives — the shape of real
// user-supplied templates.
func TestParsePartialScripts(t *testing.T) {
	cases := []struct {
		name   string
		script string
		want   ScriptSpec
	}{
		{
			name:   "pbs minimal",
			script: "#!/bin/sh\n#PBS -N x\n./a.out\n",
			want:   ScriptSpec{Manager: PBS, JobName: "x", Nodes: 1, Tasks: 1, Command: "./a.out"},
		},
		{
			name:   "pbs combined resource list",
			script: "#PBS -N x\n#PBS -l nodes=4:ppn=2,walltime=01:30:00\nrun\n",
			want: ScriptSpec{Manager: PBS, JobName: "x", Nodes: 4, Tasks: 2,
				WallTime: 90 * time.Minute, Command: "run"},
		},
		{
			name:   "pbs malformed counts fall back",
			script: "#PBS -N x\n#PBS -l nodes=lots:ppn=many\nrun\n",
			want:   ScriptSpec{Manager: PBS, JobName: "x", Nodes: 1, Tasks: 1, Command: "run"},
		},
		{
			name:   "unknown directives are ignored",
			script: "#PBS -N x\n#PBS -M ops@example.org\n#PBS -j oe\nrun\n",
			want:   ScriptSpec{Manager: PBS, JobName: "x", Nodes: 1, Tasks: 1, Command: "run"},
		},
		{
			name:   "last command wins",
			script: "#SBATCH --job-name=x\nmodule load mpi\nmpirun ./a.out\n",
			want:   ScriptSpec{Manager: SLURM, JobName: "x", Nodes: 1, Tasks: 1, Command: "mpirun ./a.out"},
		},
		{
			name:   "slurm truncated time ignored",
			script: "#SBATCH --job-name=x\n#SBATCH --time=15\nrun\n",
			want:   ScriptSpec{Manager: SLURM, JobName: "x", Nodes: 1, Tasks: 1, Command: "run"},
		},
		{
			name:   "sge bare directives",
			script: "#$ -N x\n#$ -l h_rt=00:05:00\nrun\n",
			want: ScriptSpec{Manager: SGE, JobName: "x", Nodes: 1, Tasks: 1,
				WallTime: 5 * time.Minute, Command: "run"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Parse(tc.script)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if got != tc.want {
				t.Errorf("got %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestParseRejectsDirectivelessScripts: a script with no recognizable
// scheduler directives cannot identify its manager and must error rather
// than silently defaulting.
func TestParseRejectsDirectivelessScripts(t *testing.T) {
	for _, script := range []string{
		"",
		"#!/bin/sh\n./a.out\n",
		"# just a comment\nmpirun ./a.out\n",
	} {
		if _, err := Parse(script); err == nil {
			t.Errorf("Parse(%q) succeeded, want directive error", script)
		}
	}
}
