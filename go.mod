module feam

go 1.22
