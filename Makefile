GO ?= go

.PHONY: build vet test race fault bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

race:
	$(GO) test -race -timeout 40m ./...

# Fault-tolerance suite: injection, retries, transactional staging, and
# degraded ranking, under the race detector.
fault:
	$(GO) test -race -run 'Fault|Staging|Probe|Retry|Poisoning|Concurrent' ./internal/fault/ ./internal/feam/
	$(GO) run ./cmd/feam-testbed -faults -fault-rate 0.25 -fault-seed 7 >/dev/null

bench:
	$(GO) test -run xxx -bench . -benchmem .
