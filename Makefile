GO ?= go
STATICCHECK ?= staticcheck

.PHONY: build vet test race fault obs lint bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

race:
	$(GO) test -race -timeout 40m ./...

# Fault-tolerance suite: injection, retries, transactional staging, and
# degraded ranking, under the race detector.
fault:
	$(GO) test -race -run 'Fault|Staging|Probe|Retry|Poisoning|Concurrent' ./internal/fault/ ./internal/feam/
	$(GO) run ./cmd/feam-testbed -faults -fault-rate 0.25 -fault-seed 7 >/dev/null

# Observability suite: tracer/histogram/registry unit tests plus the
# engine-level tracing and no-lost-samples tests, under the race detector.
obs:
	$(GO) test -race -count=1 ./internal/obs/
	$(GO) test -race -count=1 -run 'Tracing|Histograms|Sentinel|PredictEvaluate|FunctionalOptions|RetryWithHook' ./internal/feam/ ./internal/fault/

# Static analysis: vet always; staticcheck when installed (the tree has
# no module dependencies, so staticcheck is not fetched automatically).
lint: vet
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

bench:
	$(GO) test -run xxx -bench . -benchmem .
