GO ?= go

.PHONY: build vet test race bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

race:
	$(GO) test -race -timeout 40m ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .
