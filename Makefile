GO ?= go
STATICCHECK ?= staticcheck
FUZZTIME ?= 10s

.PHONY: build vet test race fault obs lint fuzz bench bench-json bench-smoke scenario serve-smoke

# Serving-layer smoke: boot feam-server on the 120-site mixed-ISA fleet,
# drive it with feam-load for a short burst, then SIGTERM it and require
# a clean drain. feam-load exits non-zero if any request was not 2xx, and
# the report lands in BENCH_PR8.json.
SERVE_ADDR ?= 127.0.0.1:8091
SERVE_DURATION ?= 5s

serve-smoke:
	$(GO) build -o bin/feam-server ./cmd/feam-server
	$(GO) build -o bin/feam-load ./cmd/feam-load
	./bin/feam-server -addr $(SERVE_ADDR) -fleet testdata/scenarios/isa-mix.yaml & \
	SERVER_PID=$$!; \
	trap 'kill $$SERVER_PID 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		if ./bin/feam-load -addr http://$(SERVE_ADDR) -clients 1 -duration 100ms -out /dev/null 2>/dev/null; then break; fi; \
		sleep 0.2; \
	done; \
	./bin/feam-load -addr http://$(SERVE_ADDR) -clients 32 -duration $(SERVE_DURATION) -out BENCH_PR8.json || exit 1; \
	kill -TERM $$SERVER_PID; \
	wait $$SERVER_PID

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

race:
	$(GO) test -race -timeout 40m ./...

# Fault-tolerance suite: injection, retries, transactional staging, and
# degraded ranking, under the race detector.
fault:
	$(GO) test -race -run 'Fault|Staging|Probe|Retry|Poisoning|Concurrent' ./internal/fault/ ./internal/feam/
	$(GO) run ./cmd/feam-testbed -faults -fault-rate 0.25 -fault-seed 7 >/dev/null

# Observability suite: tracer/histogram/registry unit tests plus the
# engine-level tracing and no-lost-samples tests, under the race detector.
obs:
	$(GO) test -race -count=1 ./internal/obs/
	$(GO) test -race -count=1 -run 'Tracing|Histograms|Sentinel|PredictEvaluate|FunctionalOptions|RetryWithHook' ./internal/feam/ ./internal/fault/

# Static analysis: vet, then the repo's own analyzer suite (feamcheck),
# which enforces the engine invariants — span lifecycle, fault-taxonomy
# wrapping, vfs-only file access, context plumbing, and lock ordering.
# staticcheck runs when installed (the tree has no module dependencies,
# so staticcheck is not fetched automatically).
lint: vet
	$(GO) run ./cmd/feam-lint -novet ./...
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Scenario suite: validate the committed corpus with the CLI, then replay
# every scenario as a race-detected subtest (failed scenarios print their
# human-readable assertion diffs).
scenario:
	$(GO) run ./cmd/feam-sim validate testdata/scenarios/*.yaml
	$(GO) test -race -count=1 ./internal/scenario/

# Bounded fuzzing smoke run over the attacker-facing parsers: the ELF
# reader, the soname/symbol-version parsers, the scenario YAML loader,
# and the ABI symbol-index builder. The go tool accepts one -fuzz
# pattern per invocation, hence the separate runs.
fuzz:
	$(GO) test -run xxx -fuzz FuzzParseSoname -fuzztime $(FUZZTIME) ./internal/libver/
	$(GO) test -run xxx -fuzz FuzzSymverRequirements -fuzztime $(FUZZTIME) ./internal/libver/
	$(GO) test -run xxx -fuzz FuzzParseELF -fuzztime $(FUZZTIME) ./internal/elfimg/
	$(GO) test -run xxx -fuzz FuzzScenarioYAML -fuzztime $(FUZZTIME) ./internal/scenario/
	$(GO) test -run xxx -fuzz FuzzSymbolIndex -fuzztime $(FUZZTIME) ./internal/abicheck/

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Benchmark packages: the paper-table suite at the root (including the
# PR9 survey-throughput and zero-copy View benchmarks) plus the PR6
# layering benchmarks (registry hit rate, store commit latency).
BENCH_PKGS = . ./internal/registry ./internal/store

# Full benchmark run rendered to committed JSON. BENCH_PR10.json carries
# the ABI-resolve (cold vs registry-cached, 0-alloc streaming resolve)
# numbers for this PR alongside the survey-throughput suite.
bench-json:
	$(GO) test -run xxx -bench . -benchmem $(BENCH_PKGS) | $(GO) run ./cmd/benchjson -out BENCH_PR10.json

# Fold every committed BENCH_*.json into one trajectory array, oldest PR
# first, so numbers are diffable across PRs.
bench-trajectory:
	$(GO) run ./cmd/benchjson -merge -out BENCH_trajectory.json

# Quick CI variant: a fixed tiny iteration count proves the benchmarks
# and the JSON renderer still work without paying for stable numbers,
# and the AllocsPerRun gates fail the job if the zero-copy View accessor
# path or the cached ABI resolve path ever allocates again.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 10x -benchmem $(BENCH_PKGS) | $(GO) run ./cmd/benchjson -out BENCH_smoke.json
	$(GO) test -run 'TestViewParseAllocs' -count=1 -v ./internal/elfimg/
	$(GO) test -run 'TestABIResolveAllocs' -count=1 -v ./internal/abicheck/
