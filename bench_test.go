// Package feam_bench holds the benchmark harness: one benchmark per paper
// table plus ablation benchmarks for the design choices DESIGN.md calls
// out. Benchmarks operate on a shared prebuilt testbed so each iteration
// measures the FEAM operation itself, not world construction.
package feam_bench

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"feam/internal/abicheck"
	"feam/internal/elfimg"
	"feam/internal/execsim"
	"feam/internal/experiment"
	"feam/internal/feam"
	"feam/internal/ldso"
	"feam/internal/libver"
	"feam/internal/mpistack"
	"feam/internal/scenario"
	"feam/internal/sitemodel"
	"feam/internal/testbed"
	"feam/internal/toolchain"
	"feam/internal/workload"
)

var (
	benchOnce sync.Once
	benchTB   *testbed.Testbed
	benchErr  error
)

func benchTestbed(b *testing.B) *testbed.Testbed {
	b.Helper()
	benchOnce.Do(func() { benchTB, benchErr = testbed.Build() })
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchTB
}

func benchSim() *execsim.Simulator {
	sim := execsim.NewSimulator(2013)
	sim.TransientRate = 0
	return sim
}

func compileBench(b *testing.B, tb *testbed.Testbed, site, stack, code string) *toolchain.Artifact {
	b.Helper()
	s := tb.ByName[site]
	rec := s.FindStack(stack)
	art, err := toolchain.Compile(workload.Find(code), rec, s)
	if err != nil {
		b.Fatal(err)
	}
	return art
}

// BenchmarkTable1Identification measures the Table I link-level MPI
// identification scheme on real compiled NEEDED lists.
func BenchmarkTable1Identification(b *testing.B) {
	tb := benchTestbed(b)
	var lists [][]string
	for _, spec := range []struct{ site, stack, code string }{
		{"india", "openmpi-1.4-gnu", "cg"},
		{"india", "mvapich2-1.7a2-intel", "104.milc"},
		{"fir", "mpich2-1.3-gnu", "is"},
	} {
		art := compileBench(b, tb, spec.site, spec.stack, spec.code)
		f, err := elfimg.Parse(art.Bytes)
		if err != nil {
			b.Fatal(err)
		}
		lists = append(lists, f.Needed)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, needed := range lists {
			if _, ok := mpistack.Identify(needed); !ok {
				b.Fatal("identification failed")
			}
		}
	}
}

// BenchmarkTable2SiteDiscovery measures the EDC survey that regenerates
// Table II: uname/proc/release parsing, C-library probing, and MPI stack
// enumeration via modules, softenv, and path search.
func BenchmarkTable2SiteDiscovery(b *testing.B) {
	tb := benchTestbed(b)
	for _, name := range []string{"india", "blacklight", "fir"} {
		site := tb.ByName[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env, err := feam.Discover(site)
				if err != nil || len(env.Available) == 0 {
					b.Fatalf("discovery failed: %v", err)
				}
			}
		})
	}
}

// BenchmarkTable3Prediction measures one Table III prediction, basic and
// extended, on a representative migration (india Open MPI binary at fir).
func BenchmarkTable3Prediction(b *testing.B) {
	tb := benchTestbed(b)
	runner := experiment.NewSimRunner(benchSim())
	art := compileBench(b, tb, "india", "openmpi-1.4-gnu", "cg")
	desc, err := feam.DescribeBytes(art.Bytes, art.Name)
	if err != nil {
		b.Fatal(err)
	}
	fir := tb.ByName["fir"]
	env, err := feam.Discover(fir)
	if err != nil {
		b.Fatal(err)
	}
	bundle := sourceBundle(b, tb, "india", "openmpi-1.4-gnu", art)

	b.Run("basic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pred, err := feam.Evaluate(desc, art.Bytes, env, fir, feam.EvalOptions{Runner: runner})
			if err != nil || !pred.Ready {
				b.Fatalf("prediction failed: %v", err)
			}
		}
	})
	b.Run("extended", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pred, err := feam.Evaluate(desc, art.Bytes, env, fir, feam.EvalOptions{
				Runner: runner, Bundle: bundle, Resolve: true,
			})
			if err != nil || !pred.Ready {
				b.Fatalf("prediction failed: %v", err)
			}
		}
	})
}

// BenchmarkTable4Resolution measures the Table IV resolution path: the
// MVAPICH2 1.2 binary from ranger whose MPI and Fortran runtime libraries
// must be staged at india.
func BenchmarkTable4Resolution(b *testing.B) {
	tb := benchTestbed(b)
	runner := experiment.NewSimRunner(benchSim())
	art := compileBench(b, tb, "ranger", "mvapich2-1.2-gnu", "cg")
	desc, err := feam.DescribeBytes(art.Bytes, art.Name)
	if err != nil {
		b.Fatal(err)
	}
	india := tb.ByName["india"]
	env, err := feam.Discover(india)
	if err != nil {
		b.Fatal(err)
	}
	bundle := sourceBundle(b, tb, "ranger", "mvapich2-1.2-gnu", art)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred, err := feam.Evaluate(desc, art.Bytes, env, india, feam.EvalOptions{
			Runner: runner, Bundle: bundle, Resolve: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !pred.Ready || len(pred.ResolvedLibs) == 0 {
			b.Fatalf("resolution did not run: %+v", pred.Reasons)
		}
	}
}

// BenchmarkSourcePhaseBundle measures the §VI.C source phase: description,
// discovery, library gathering and bundle assembly.
func BenchmarkSourcePhaseBundle(b *testing.B) {
	tb := benchTestbed(b)
	runner := experiment.NewSimRunner(benchSim())
	ranger := tb.ByName["ranger"]
	art := compileBench(b, tb, "ranger", "mvapich2-1.2-gnu", "cg")
	if err := ranger.FS().WriteFile("/home/user/"+art.Name, art.Bytes); err != nil {
		b.Fatal(err)
	}
	snap := ranger.SnapshotEnv()
	if err := testbed.ActivateStack(ranger, "mvapich2-1.2-gnu"); err != nil {
		b.Fatal(err)
	}
	defer ranger.RestoreEnv(snap)
	cfg := benchConfig("source", "/home/user/"+art.Name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bundle, _, err := feam.RunSourcePhase(cfg, ranger, runner)
		if err != nil || bundle.Size() == 0 {
			b.Fatalf("source phase failed: %v", err)
		}
	}
}

// BenchmarkELFBuildParse measures the substrate: building and parsing the
// ELF image of a typical application binary.
func BenchmarkELFBuildParse(b *testing.B) {
	spec := elfimg.Spec{
		Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeExec,
		Interp: "/lib64/ld-linux-x86-64.so.2",
		Needed: []string{"libmpi.so.0", "libopen-rte.so.0", "libopen-pal.so.0",
			"libnsl.so.1", "libutil.so.1", "libgfortran.so.1", "libm.so.6", "libpthread.so.0", "libc.so.6"},
		VerNeeds: []elfimg.VerNeed{{File: "libc.so.6", Versions: []string{"GLIBC_2.0", "GLIBC_2.3.4"}}},
		Comments: []string{"GCC: (GNU) 4.1.2"},
		TextSize: 256 << 10,
	}
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := elfimg.Build(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	img := elfimg.MustBuild(spec)
	b.Run("parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := elfimg.Parse(img); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The zero-copy path: a reused Parser walking every accessor. Run
	// with -benchmem, the allocs/op column is the number CI gates on.
	b.Run("view", func(b *testing.B) {
		var p elfimg.Parser
		var sink int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := p.Parse(img)
			if err != nil {
				b.Fatal(err)
			}
			sink += len(v.Interp()) + len(v.Soname())
			for j := 0; j < v.NeededCount(); j++ {
				sink += len(v.NeededAt(j))
			}
			v.VerNeeds(func(entry int, version []byte) bool {
				sink += len(v.VerNeedFileAt(entry)) + len(version)
				return true
			})
			v.Comments(func(c []byte) bool { sink += len(c); return true })
		}
		if sink == 0 {
			b.Fatal("no data observed")
		}
	})
}

// BenchmarkLdsoResolve measures the dynamic-loader closure over a fully
// provisioned site.
func BenchmarkLdsoResolve(b *testing.B) {
	tb := benchTestbed(b)
	india := tb.ByName["india"]
	art := compileBench(b, tb, "india", "openmpi-1.4-gnu", "bt")
	opts := ldso.Options{
		FS:          india.FS(),
		LibraryPath: []string{"/opt/openmpi-1.4-gnu/lib"},
		DefaultDirs: india.DefaultLibDirs(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ldso.ResolveBytes(art.Bytes, art.Name, opts)
		if err != nil || !res.OK() {
			b.Fatalf("resolution failed: %v %v", err, res.Missing)
		}
	}
}

// BenchmarkExecSimRun measures a single ground-truth execution.
func BenchmarkExecSimRun(b *testing.B) {
	tb := benchTestbed(b)
	sim := benchSim()
	india := tb.ByName["india"]
	rec := india.FindStack("openmpi-1.4-gnu")
	art := compileBench(b, tb, "india", "openmpi-1.4-gnu", "cg")
	snap := india.SnapshotEnv()
	if err := testbed.ActivateStack(india, rec.Key); err != nil {
		b.Fatal(err)
	}
	defer india.RestoreEnv(snap)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.Run(execsim.Request{Art: art, Site: india, Stack: rec})
		if !res.Success() {
			b.Fatalf("run failed: %s", res.Detail)
		}
	}
}

// BenchmarkAblationRecursiveResolution compares the paper's recursive
// resolution model with a single-level variant that ignores copy
// dependencies. The shallow variant is cheaper but stages less and misses
// transitive requirements.
func BenchmarkAblationRecursiveResolution(b *testing.B) {
	tb := benchTestbed(b)
	runner := experiment.NewSimRunner(benchSim())
	art := compileBench(b, tb, "ranger", "mvapich2-1.2-gnu", "cg")
	desc, err := feam.DescribeBytes(art.Bytes, art.Name)
	if err != nil {
		b.Fatal(err)
	}
	india := tb.ByName["india"]
	env, err := feam.Discover(india)
	if err != nil {
		b.Fatal(err)
	}
	bundle := sourceBundle(b, tb, "ranger", "mvapich2-1.2-gnu", art)
	for name, shallow := range map[string]bool{"recursive": false, "single-level": true} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := feam.Evaluate(desc, art.Bytes, env, india, feam.EvalOptions{
					Runner: runner, Bundle: bundle, Resolve: true, ShallowResolution: shallow,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDeterminantOrder shows the value of evaluating the cheap
// ISA and C-library gates before the expensive MPI stack probes (§V.C): an
// early C-library failure skips probe executions entirely.
func BenchmarkAblationDeterminantOrder(b *testing.B) {
	tb := benchTestbed(b)
	runner := experiment.NewSimRunner(benchSim())
	ranger := tb.ByName["ranger"]
	envRanger, err := feam.Discover(ranger)
	if err != nil {
		b.Fatal(err)
	}
	// A binary that fails the C-library gate at ranger.
	failing := compileBench(b, tb, "forge", "openmpi-1.4-gnu", "lu")
	failingDesc, err := feam.DescribeBytes(failing.Bytes, failing.Name)
	if err != nil {
		b.Fatal(err)
	}
	// A binary that passes all gates and pays for the probes.
	passing := compileBench(b, tb, "india", "openmpi-1.4-gnu", "is")
	passingDesc, err := feam.DescribeBytes(passing.Bytes, passing.Name)
	if err != nil {
		b.Fatal(err)
	}
	fir := tb.ByName["fir"]
	envFir, err := feam.Discover(fir)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("early-exit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pred, err := feam.Evaluate(failingDesc, failing.Bytes, envRanger, ranger, feam.EvalOptions{Runner: runner})
			if err != nil || pred.Ready {
				b.Fatal("expected early failure")
			}
		}
	})
	b.Run("full-evaluation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pred, err := feam.Evaluate(passingDesc, passing.Bytes, envFir, fir, feam.EvalOptions{Runner: runner})
			if err != nil || !pred.Ready {
				b.Fatal("expected success")
			}
		}
	})
}

// BenchmarkAblationVersionPolicy compares the paper's soname-major
// compatibility rule with exact-name matching when looking up bundle
// copies.
func BenchmarkAblationVersionPolicy(b *testing.B) {
	tb := benchTestbed(b)
	art := compileBench(b, tb, "ranger", "mvapich2-1.2-gnu", "cg")
	bundle := sourceBundle(b, tb, "ranger", "mvapich2-1.2-gnu", art)
	// The compatibility rule finds libmpich.so.1.0 for a libmpich.so.1
	// reference; exact matching does not.
	b.Run("soname-major", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if bundle.FindLibrary("libmpich.so.1") == nil {
				b.Fatal("compatibility lookup failed")
			}
		}
	})
	b.Run("exact-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			found := false
			for _, lc := range bundle.Libs {
				if lc.Name == "libmpich.so.1" {
					found = true
				}
			}
			if found {
				b.Fatal("exact lookup should miss")
			}
		}
	})
}

// BenchmarkEngineDiscoveryCache compares a cold EDC survey (fresh engine
// every iteration) against the engine's memoized path (one engine, warm
// cache). The warm path is the common case inside an experiment, where the
// same site is consulted for every binary that targets it.
func BenchmarkEngineDiscoveryCache(b *testing.B) {
	tb := benchTestbed(b)
	ctx := context.Background()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := feam.New()
			for _, site := range tb.Sites {
				env, err := eng.Discover(ctx, site)
				if err != nil || len(env.Available) == 0 {
					b.Fatalf("discovery failed: %v", err)
				}
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		eng := feam.New()
		for _, site := range tb.Sites {
			if _, err := eng.Discover(ctx, site); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, site := range tb.Sites {
				env, err := eng.Discover(ctx, site)
				if err != nil || len(env.Available) == 0 {
					b.Fatalf("discovery failed: %v", err)
				}
			}
		}
	})
}

var (
	fleetOnce sync.Once
	fleetTB   *testbed.Testbed
	fleetErr  error
)

// fleetTestbed builds the 120-site mixed-ISA fleet from the scenario
// corpus once and shares it across survey benchmarks.
func fleetTestbed(b *testing.B) *testbed.Testbed {
	b.Helper()
	fleetOnce.Do(func() {
		data, err := os.ReadFile("testdata/scenarios/isa-mix.yaml")
		if err != nil {
			fleetErr = err
			return
		}
		spec, err := scenario.LoadFleet(data)
		if err != nil {
			fleetErr = err
			return
		}
		fleetTB, fleetErr = scenario.BuildFleet(spec)
	})
	if fleetErr != nil {
		b.Fatal(fleetErr)
	}
	return fleetTB
}

// BenchmarkSurveyFleet measures EDC survey throughput over the 120-site
// mixed-ISA fleet from the scenario corpus. The cold variant surveys the
// whole fleet with a fresh engine every iteration. The incremental variant
// upgrades one site's C library and re-surveys the fleet (one real survey,
// 119 cache hits). The glibc-rollout variant is the headline incremental
// number: a fleet-wide C-library update touches every site's system
// library directory, so all 120 sites need a real re-survey — but only
// the one affected shard per site should be re-walked. All report sites/s
// so BENCH_*.json carries an absolute throughput number across PRs.
func BenchmarkSurveyFleet(b *testing.B) {
	tb := fleetTestbed(b)
	ctx := context.Background()
	sites := tb.Sites
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := feam.New()
			for _, site := range sites {
				env, err := eng.Discover(ctx, site)
				if err != nil || env.Glibc == nil {
					b.Fatalf("survey failed: %v", err)
				}
			}
		}
		b.ReportMetric(float64(len(sites))*float64(b.N)/b.Elapsed().Seconds(), "sites/s")
	})
	b.Run("incremental-glibc-upgrade", func(b *testing.B) {
		eng := feam.New()
		for _, site := range sites {
			if _, err := eng.Discover(ctx, site); err != nil {
				b.Fatal(err)
			}
		}
		target := tb.ByName["grid-0"]
		versions := []libver.Version{libver.MustParseVersion("2.12"), libver.MustParseVersion("2.5")}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The upgrade itself (ELF rebuilds) is site-admin work, not
			// survey work; keep it off the clock.
			b.StopTimer()
			if err := target.UpgradeCLibrary(versions[i%2]); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for _, site := range sites {
				env, err := eng.Discover(ctx, site)
				if err != nil || env.Glibc == nil {
					b.Fatalf("survey failed: %v", err)
				}
			}
		}
		b.ReportMetric(float64(len(sites))*float64(b.N)/b.Elapsed().Seconds(), "sites/s")
	})
	b.Run("glibc-rollout", func(b *testing.B) {
		eng := feam.New()
		for _, site := range sites {
			if _, err := eng.Discover(ctx, site); err != nil {
				b.Fatal(err)
			}
		}
		banners := []string{
			"GNU C Library stable release version 2.12, by Roland McGrath et al.",
			"GNU C Library stable release version 2.5, by Roland McGrath et al.",
		}
		wants := []string{"2.12", "2.5"}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Rolling the new C library out (banner update on every site)
			// is site-admin work; only the re-surveys are on the clock.
			b.StopTimer()
			for _, site := range sites {
				libc := site.SystemLibDir() + "/libc.so.6"
				if err := site.FS().SetAttr(libc, sitemodel.AttrExecOutput, banners[i%2]); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			for _, site := range sites {
				env, err := eng.Discover(ctx, site)
				if err != nil || env.Glibc.String() != wants[i%2] {
					b.Fatalf("survey stale after rollout: %v glibc=%v", err, env.Glibc)
				}
			}
		}
		b.ReportMetric(float64(len(sites))*float64(b.N)/b.Elapsed().Seconds(), "sites/s")
	})
}

// BenchmarkABIResolve measures the ABI symbol-resolution analyzer over
// the 120-site mixed-ISA fleet with a real compiled MPI binary: cold
// (every site index built from a walk of the site's library roots)
// against the engine's registry-cached path (indexes stamped by env
// fingerprint and vfs generation, built once). The cached-resolve
// variant isolates the streaming resolver on a prebuilt index and a
// pre-parsed view — run with -benchmem, its allocs/op column is the
// number CI's bench-smoke gate pins at zero.
func BenchmarkABIResolve(b *testing.B) {
	fleet := fleetTestbed(b)
	tb := benchTestbed(b)
	art := compileBench(b, tb, "india", "openmpi-1.4-gnu", "cg")
	ctx := context.Background()
	sites := fleet.Sites

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := feam.New()
			for _, site := range sites {
				if _, err := eng.ABICheck(ctx, site, art.Bytes, art.Name, false); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(sites))*float64(b.N)/b.Elapsed().Seconds(), "sites/s")
	})
	b.Run("registry-cached", func(b *testing.B) {
		eng := feam.New()
		for _, site := range sites {
			if _, err := eng.ABICheck(ctx, site, art.Bytes, art.Name, false); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, site := range sites {
				if _, err := eng.ABICheck(ctx, site, art.Bytes, art.Name, false); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(sites))*float64(b.N)/b.Elapsed().Seconds(), "sites/s")
	})
	b.Run("cached-resolve", func(b *testing.B) {
		ix := abicheck.BuildIndex(fleet.ByName["grid-0"], nil, 0)
		var p elfimg.Parser
		v, err := p.Parse(art.Bytes)
		if err != nil {
			b.Fatal(err)
		}
		var sink int
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.Resolve(v, func(name, version []byte, verdict abicheck.Verdict, provider string) bool {
				sink += len(name) + int(verdict)
				return true
			})
		}
		if sink == 0 {
			b.Fatal("resolver observed no symbols")
		}
	})
}

// BenchmarkRankSitesParallel measures the full five-site ranking —
// survey, evaluation, and probe runs per site — sequentially and with the
// engine's bounded fan-out. A fresh engine per iteration keeps every
// survey cold so the parallel speedup reflects real work.
func BenchmarkRankSitesParallel(b *testing.B) {
	tb := benchTestbed(b)
	runner := experiment.NewSimRunner(benchSim())
	art := compileBench(b, tb, "india", "openmpi-1.4-gnu", "cg")
	desc, err := feam.DescribeBytes(art.Bytes, art.Name)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	opts := feam.EvalOptions{Runner: runner}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := feam.New()
				ranked := eng.RankSitesParallel(ctx, desc, art.Bytes, tb.Sites, opts, workers)
				for _, a := range ranked {
					if a.Err != nil {
						b.Fatal(a.Err)
					}
				}
			}
		})
	}
}

func sourceBundle(b *testing.B, tb *testbed.Testbed, siteName, stackKey string, art *toolchain.Artifact) *feam.Bundle {
	b.Helper()
	site := tb.ByName[siteName]
	if err := site.FS().WriteFile("/home/user/"+art.Name, art.Bytes); err != nil {
		b.Fatal(err)
	}
	snap := site.SnapshotEnv()
	defer site.RestoreEnv(snap)
	if err := testbed.ActivateStack(site, stackKey); err != nil {
		b.Fatal(err)
	}
	runner := experiment.NewSimRunner(benchSim())
	bundle, _, err := feam.RunSourcePhase(benchConfig("source", "/home/user/"+art.Name), site, runner)
	if err != nil {
		b.Fatal(err)
	}
	return bundle
}

func benchConfig(phase, binary string) *feam.Config {
	serial := "#!/bin/sh\n#PBS -N feam\n#PBS -q debug\n#PBS -l nodes=1:ppn=1\n#PBS -l walltime=00:10:00\n%CMD%\n"
	parallel := "#!/bin/sh\n#PBS -N feam\n#PBS -q debug\n#PBS -l nodes=1:ppn=4\n#PBS -l walltime=00:15:00\n%CMD%\n"
	return &feam.Config{Phase: phase, BinaryPath: binary,
		SerialScript: serial, ParallelScript: parallel}
}
